#include "core/provisioner.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/thread_pool.h"
#include "core/backup_lp.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace sb {

namespace {

/// Per-config data reused across rows of one scenario LP.
struct ConfigPlan {
  std::vector<DcId> candidates;           ///< DCs this config may use
  std::vector<HostingProfile> profiles;   ///< parallel to candidates
};

/// Candidate DCs (and their hosting profiles) per config column under a
/// scenario: the DC must be alive, no leg may ride the failed link, and the
/// ACL threshold (Eq 4) must hold — with the paper's min-ACL fallback when
/// nothing qualifies.
std::vector<ConfigPlan> build_config_plans(const DemandMatrix& demand,
                                           const FailureScenario& scenario,
                                           const EvalContext& ctx,
                                           double acl_threshold_ms) {
  const World& world = *ctx.world;
  const Topology& topo = *ctx.topology;
  const std::vector<DcId> all_dcs = world.dc_ids();
  std::vector<ConfigPlan> plans(demand.config_count());
  for (std::size_t c = 0; c < demand.config_count(); ++c) {
    const CallConfig& config = ctx.registry->get(demand.config_at(c));
    std::vector<DcId> avail;
    for (DcId dc : all_dcs) {
      if (!dc_available(scenario, dc)) continue;
      const LocationId dc_loc = world.datacenter(dc).location;
      bool blocked = false;
      for (const ConfigEntry& e : config.entries()) {
        if (uses_failed_link(scenario, topo, dc_loc, e.location)) {
          blocked = true;
          break;
        }
      }
      if (!blocked) avail.push_back(dc);
    }
    if (avail.empty()) {
      // A link failure isolating every DC from some leg: fall back to the
      // alive DCs and keep the nominal path (real deployments reroute; we
      // conservatively provision the nominal path's capacity elsewhere).
      for (DcId dc : all_dcs) {
        if (dc_available(scenario, dc)) avail.push_back(dc);
      }
    }
    require(!avail.empty(), "build_config_plans: no DC available");
    plans[c].candidates = feasible_dcs(config, avail, *ctx.latency,
                                       acl_threshold_ms);
    plans[c].profiles.reserve(plans[c].candidates.size());
    for (DcId dc : plans[c].candidates) {
      plans[c].profiles.push_back(make_hosting_profile(config, dc, ctx));
    }
  }
  return plans;
}

/// Splits each DC's provisioned serving+backup cores across its fleet
/// proportional to server capacity (ProvisionResult::server_budget_cores).
/// Empty when the World has no fleet.
std::vector<double> split_server_budgets(const World& world,
                                         const CapacityPlan& capacity) {
  std::vector<double> budgets;
  if (world.server_count() == 0) return budgets;
  budgets.assign(world.server_count(), 0.0);
  for (std::size_t x = 0; x < world.dc_count(); ++x) {
    const DcId dc(static_cast<std::uint32_t>(x));
    const std::vector<ServerId>& fleet = world.servers_in_dc(dc);
    if (fleet.empty()) continue;
    double fleet_cores = 0.0;
    for (ServerId sid : fleet) fleet_cores += world.server(sid).cores;
    const double total = capacity.dc_total_cores(dc);
    for (ServerId sid : fleet) {
      budgets[sid.value()] =
          fleet_cores > 0.0
              ? total * world.server(sid).cores / fleet_cores
              : total / static_cast<double>(fleet.size());
    }
  }
  return budgets;
}

}  // namespace

SwitchboardProvisioner::SwitchboardProvisioner(EvalContext ctx,
                                               ProvisionOptions options)
    : ctx_(ctx), options_(options) {
  require(ctx_.world && ctx_.topology && ctx_.latency && ctx_.registry &&
              ctx_.loads,
          "SwitchboardProvisioner: incomplete context");
  require(options_.acl_threshold_ms > 0.0,
          "SwitchboardProvisioner: ACL threshold");
}

ScenarioOutcome SwitchboardProvisioner::solve_scenario(
    const DemandMatrix& demand, const FailureScenario& scenario,
    PlacementMatrix* placement_out, const CapacityPlan* floors,
    const ScenarioBasisHint* warm, ScenarioBasisHint* basis_out) const {
  static obs::Counter& scenarios_solved =
      obs::MetricsRegistry::global().counter("sb.provisioner.scenarios_solved");
  static obs::Histogram& scenario_solve_s =
      obs::MetricsRegistry::global().histogram(
          "sb.provisioner.scenario_solve_s");
  scenarios_solved.inc();
  obs::ScopedTimer timer(scenario_solve_s);
  const World& world = *ctx_.world;
  const Topology& topo = *ctx_.topology;
  const std::size_t slots = demand.slot_count();
  const std::size_t config_count = demand.config_count();

  const std::vector<ConfigPlan> plans =
      build_config_plans(demand, scenario, ctx_, options_.acl_threshold_ms);

  lp::Model model;

  // Semantic key per LP column — (kind, flat index) — so a basis can be
  // carried between scenarios whose column sets differ. 'c' = CP per DC,
  // 'n' = NP per link, 's' = S per (slot, config, DC).
  std::vector<std::pair<char, std::size_t>> var_keys;
  // Same idea per constraint row — 'C' = DC capacity per (slot, DC), 'L' =
  // link capacity per (slot, link), 'E' = completeness per (slot, config) —
  // so the slack/tight row pattern warm-starts along with the columns.
  std::vector<std::pair<char, std::size_t>> row_keys;

  // Peak variables. CP_x only for DCs that are candidates somewhere; NP_l
  // only for links some (config, DC) pair uses.
  std::vector<int> cp_var(world.dc_count(), -1);
  std::vector<int> np_var(topo.link_count(), -1);
  for (std::size_t c = 0; c < config_count; ++c) {
    for (std::size_t k = 0; k < plans[c].candidates.size(); ++k) {
      const DcId dc = plans[c].candidates[k];
      if (cp_var[dc.value()] < 0) {
        cp_var[dc.value()] = model.add_variable(
            0.0, lp::kInf, world.datacenter(dc).core_cost,
            "CP_" + world.datacenter(dc).name);
        var_keys.emplace_back('c', dc.value());
      }
      if (options_.joint_network) {
        for (const auto& [l, _] : plans[c].profiles[k].link_gbps_per_call) {
          if (np_var[l.value()] < 0) {
            np_var[l.value()] = model.add_variable(
                0.0, lp::kInf, topo.link(l).cost_per_gbps,
                "NP_" + topo.link(l).name);
            var_keys.emplace_back('n', l.value());
          }
        }
      }
    }
  }

  // S_tcx variables with a small ACL tie-break cost (prefers low latency
  // among cost-equal placements without distorting the Eq 3 objective).
  // s_var[(t * config_count + c)] holds the per-candidate variable ids.
  std::vector<std::vector<int>> s_var(slots * config_count);
  for (TimeSlot t = 0; t < slots; ++t) {
    for (std::size_t c = 0; c < config_count; ++c) {
      auto& vars = s_var[static_cast<std::size_t>(t) * config_count + c];
      const double d = demand.demand(t, c);
      if (d <= 0.0) continue;  // nothing to place in this slot
      vars.reserve(plans[c].candidates.size());
      for (std::size_t k = 0; k < plans[c].candidates.size(); ++k) {
        vars.push_back(model.add_variable(
            0.0, lp::kInf,
            options_.acl_epsilon * plans[c].profiles[k].acl_ms, ""));
        var_keys.emplace_back(
            's', (static_cast<std::size_t>(t) * config_count + c) *
                         world.dc_count() +
                     plans[c].candidates[k].value());
      }
    }
  }

  // Serving-capacity rows (Eq 5/6): usage - peak <= 0 for every slot.
  for (TimeSlot t = 0; t < slots; ++t) {
    std::vector<std::vector<lp::Term>> dc_rows(world.dc_count());
    std::vector<std::vector<lp::Term>> link_rows(topo.link_count());
    for (std::size_t c = 0; c < config_count; ++c) {
      const auto& vars = s_var[static_cast<std::size_t>(t) * config_count + c];
      if (vars.empty()) continue;
      for (std::size_t k = 0; k < vars.size(); ++k) {
        const DcId dc = plans[c].candidates[k];
        const HostingProfile& profile = plans[c].profiles[k];
        dc_rows[dc.value()].push_back({vars[k], profile.cores_per_call});
        if (options_.joint_network) {
          for (const auto& [l, gbps] : profile.link_gbps_per_call) {
            link_rows[l.value()].push_back({vars[k], gbps});
          }
        }
      }
    }
    // With a floor, the peak variable only buys capacity ABOVE it:
    // usage - extra <= floor (Eq 7/8's cross-scenario sharing).
    for (std::size_t x = 0; x < world.dc_count(); ++x) {
      if (dc_rows[x].empty()) continue;
      dc_rows[x].push_back({cp_var[x], -1.0});
      model.add_constraint(std::move(dc_rows[x]), lp::Sense::kLe,
                           floors ? floors->dc_serving_cores[x] +
                                        floors->dc_backup_cores[x]
                                  : 0.0);
      row_keys.emplace_back(
          'C', static_cast<std::size_t>(t) * world.dc_count() + x);
    }
    for (std::size_t l = 0; l < topo.link_count(); ++l) {
      if (link_rows[l].empty()) continue;
      link_rows[l].push_back({np_var[l], -1.0});
      model.add_constraint(std::move(link_rows[l]), lp::Sense::kLe,
                           floors ? floors->link_gbps[l] : 0.0);
      row_keys.emplace_back(
          'L', static_cast<std::size_t>(t) * topo.link_count() + l);
    }
  }

  // Completeness rows (Eq 9): every call hosted somewhere.
  for (TimeSlot t = 0; t < slots; ++t) {
    for (std::size_t c = 0; c < config_count; ++c) {
      const auto& vars = s_var[static_cast<std::size_t>(t) * config_count + c];
      if (vars.empty()) continue;
      std::vector<lp::Term> terms;
      terms.reserve(vars.size());
      for (int v : vars) terms.push_back({v, 1.0});
      model.add_constraint(std::move(terms), lp::Sense::kEq,
                           demand.demand(t, c));
      row_keys.emplace_back('E',
                            static_cast<std::size_t>(t) * config_count + c);
    }
  }

  lp::SolveOptions lp_options = options_.lp_options;
  if (!warm || warm->empty()) {
    // Cold solve (the F0 base scenario): the scenario fan-out pool is idle
    // while it runs, so the block decomposition may use those threads for
    // its subproblem solves instead.
    if (lp_options.decompose_threads <= 1) {
      lp_options.decompose_threads = options_.scenario_threads;
    }
  }
  if (warm && !warm->empty()) {
    // NOTE: dual_resolve is deliberately NOT set here. The dual simplex
    // pays off when a re-solve perturbs bounds or rhs under an unchanged
    // column set (lp_warm_start_test measures it beating the primal
    // there), but a failure scenario REMOVES the failed DC's placement
    // columns: the mapped hint is primal-near-feasible and dual-far, and
    // routing it to the dual simplex measured ~2.4x the warm primal's
    // iterations on the provisioner_parallel_test fixture.
    //
    // Translate the semantic hint into this model's column order. Columns
    // the hint doesn't know (or an undersized hint vector) default to
    // at-lower, which is also the cold-start state.
    lp_options.warm_start.assign(var_keys.size(), lp::VarStatus::kAtLower);
    for (std::size_t j = 0; j < var_keys.size(); ++j) {
      const auto& [kind, idx] = var_keys[j];
      const std::vector<lp::VarStatus>* bank =
          kind == 'c' ? &warm->cp : kind == 'n' ? &warm->np : &warm->s;
      if (idx < bank->size()) lp_options.warm_start[j] = (*bank)[idx];
    }
    // Rows the hint doesn't know default to kBasic (slack basic), which is
    // exactly the cold-start state of a fresh row.
    lp_options.warm_start_rows.assign(row_keys.size(), lp::VarStatus::kBasic);
    for (std::size_t r = 0; r < row_keys.size(); ++r) {
      const auto& [kind, idx] = row_keys[r];
      const std::vector<lp::VarStatus>* bank =
          kind == 'C' ? &warm->row_dc
                      : kind == 'L' ? &warm->row_link : &warm->row_cfg;
      if (idx < bank->size()) lp_options.warm_start_rows[r] = (*bank)[idx];
    }
  }
  const lp::Solution solution = lp::solve(model, lp_options);
  if (!solution.optimal()) {
    throw SolveError("provisioning LP for scenario " + scenario.name +
                     " returned " + lp::to_string(solution.status));
  }
  if (basis_out && solution.basis.size() == var_keys.size()) {
    basis_out->cp.assign(world.dc_count(), lp::VarStatus::kAtLower);
    basis_out->np.assign(topo.link_count(), lp::VarStatus::kAtLower);
    basis_out->s.assign(slots * config_count * world.dc_count(),
                        lp::VarStatus::kAtLower);
    for (std::size_t j = 0; j < var_keys.size(); ++j) {
      const auto& [kind, idx] = var_keys[j];
      std::vector<lp::VarStatus>& bank =
          kind == 'c' ? basis_out->cp : kind == 'n' ? basis_out->np
                                                    : basis_out->s;
      bank[idx] = solution.basis[j];
    }
    if (solution.row_basis.size() == row_keys.size()) {
      basis_out->row_dc.assign(slots * world.dc_count(), lp::VarStatus::kBasic);
      basis_out->row_link.assign(slots * topo.link_count(),
                                 lp::VarStatus::kBasic);
      basis_out->row_cfg.assign(slots * config_count, lp::VarStatus::kBasic);
      for (std::size_t r = 0; r < row_keys.size(); ++r) {
        const auto& [kind, idx] = row_keys[r];
        std::vector<lp::VarStatus>& bank =
            kind == 'C' ? basis_out->row_dc
                        : kind == 'L' ? basis_out->row_link
                                      : basis_out->row_cfg;
        bank[idx] = solution.row_basis[r];
      }
    }
  }

  ScenarioOutcome outcome;
  outcome.scenario = scenario;
  outcome.lp_objective = solution.objective;
  outcome.lp_iterations = solution.iterations;
  outcome.required = CapacityPlan::zeros(world, topo);
  for (std::size_t x = 0; x < world.dc_count(); ++x) {
    const double floor = floors ? floors->dc_serving_cores[x] +
                                      floors->dc_backup_cores[x]
                                : 0.0;
    const double extra = cp_var[x] >= 0 ? solution.values[cp_var[x]] : 0.0;
    outcome.required.dc_serving_cores[x] = floor + extra;
  }

  PlacementMatrix placement(slots, config_count, world.dc_count());
  for (TimeSlot t = 0; t < slots; ++t) {
    for (std::size_t c = 0; c < config_count; ++c) {
      const auto& vars = s_var[static_cast<std::size_t>(t) * config_count + c];
      for (std::size_t k = 0; k < vars.size(); ++k) {
        placement.set_calls(t, c, plans[c].candidates[k],
                            solution.values[vars[k]]);
      }
    }
  }

  if (options_.joint_network) {
    for (std::size_t l = 0; l < topo.link_count(); ++l) {
      const double floor = floors ? floors->link_gbps[l] : 0.0;
      const double extra = np_var[l] >= 0 ? solution.values[np_var[l]] : 0.0;
      outcome.required.link_gbps[l] = floor + extra;
    }
  } else {
    // §4.3 ablation: network follows from the compute-optimal placement.
    const UsageProfile usage = compute_usage(placement, demand, ctx_);
    outcome.required.link_gbps = usage.link_peaks();
    if (floors) {
      for (std::size_t l = 0; l < topo.link_count(); ++l) {
        outcome.required.link_gbps[l] =
            std::max(outcome.required.link_gbps[l], floors->link_gbps[l]);
      }
    }
  }

  if (placement_out) *placement_out = std::move(placement);
  return outcome;
}

// provision() wraps this call in its "prov.provision" span before
// dispatching here, so the joint path needs no span of its own.
ProvisionResult SwitchboardProvisioner::provision_joint(
    const DemandMatrix& demand) const {
  const World& world = *ctx_.world;
  const Topology& topo = *ctx_.topology;
  const std::size_t slots = demand.slot_count();
  const std::size_t config_count = demand.config_count();

  std::vector<FailureScenario> scenarios;
  scenarios.push_back(FailureScenario::none());
  for (DcId dc : world.dc_ids()) {
    scenarios.push_back(FailureScenario::dc_failure(dc, world));
  }

  lp::Model model;
  // Shared capacity variables (Eq 3 prices them once; Eq 7/8 are the
  // per-scenario usage rows below).
  std::vector<int> cp_var(world.dc_count(), -1);
  std::vector<int> np_var(topo.link_count(), -1);
  auto ensure_cp = [&](DcId dc) {
    if (cp_var[dc.value()] < 0) {
      cp_var[dc.value()] =
          model.add_variable(0.0, lp::kInf, world.datacenter(dc).core_cost,
                             "CP_" + world.datacenter(dc).name);
    }
    return cp_var[dc.value()];
  };
  auto ensure_np = [&](LinkId l) {
    if (np_var[l.value()] < 0) {
      np_var[l.value()] = model.add_variable(
          0.0, lp::kInf, topo.link(l).cost_per_gbps, "NP_" + topo.link(l).name);
    }
    return np_var[l.value()];
  };

  struct Block {
    std::vector<ConfigPlan> plans;
    std::vector<std::vector<int>> s_var;  ///< per (t * C + c)
  };
  std::vector<Block> blocks(scenarios.size());

  for (std::size_t f = 0; f < scenarios.size(); ++f) {
    Block& block = blocks[f];
    block.plans = build_config_plans(demand, scenarios[f], ctx_,
                                     options_.acl_threshold_ms);
    block.s_var.assign(slots * config_count, {});
    for (TimeSlot t = 0; t < slots; ++t) {
      for (std::size_t c = 0; c < config_count; ++c) {
        if (demand.demand(t, c) <= 0.0) continue;
        auto& vars = block.s_var[static_cast<std::size_t>(t) * config_count + c];
        for (std::size_t k = 0; k < block.plans[c].candidates.size(); ++k) {
          vars.push_back(model.add_variable(
              0.0, lp::kInf,
              options_.acl_epsilon * block.plans[c].profiles[k].acl_ms, ""));
        }
      }
    }
    for (TimeSlot t = 0; t < slots; ++t) {
      std::vector<std::vector<lp::Term>> dc_rows(world.dc_count());
      std::vector<std::vector<lp::Term>> link_rows(topo.link_count());
      for (std::size_t c = 0; c < config_count; ++c) {
        const auto& vars =
            block.s_var[static_cast<std::size_t>(t) * config_count + c];
        for (std::size_t k = 0; k < vars.size(); ++k) {
          const DcId dc = block.plans[c].candidates[k];
          const HostingProfile& profile = block.plans[c].profiles[k];
          dc_rows[dc.value()].push_back({vars[k], profile.cores_per_call});
          for (const auto& [l, gbps] : profile.link_gbps_per_call) {
            link_rows[l.value()].push_back({vars[k], gbps});
          }
        }
      }
      for (std::size_t x = 0; x < world.dc_count(); ++x) {
        if (dc_rows[x].empty()) continue;
        dc_rows[x].push_back(
            {ensure_cp(DcId(static_cast<std::uint32_t>(x))), -1.0});
        model.add_constraint(std::move(dc_rows[x]), lp::Sense::kLe, 0.0);
      }
      for (std::size_t l = 0; l < topo.link_count(); ++l) {
        if (link_rows[l].empty()) continue;
        link_rows[l].push_back(
            {ensure_np(LinkId(static_cast<std::uint32_t>(l))), -1.0});
        model.add_constraint(std::move(link_rows[l]), lp::Sense::kLe, 0.0);
      }
      for (std::size_t c = 0; c < config_count; ++c) {
        const auto& vars =
            block.s_var[static_cast<std::size_t>(t) * config_count + c];
        if (vars.empty()) continue;
        std::vector<lp::Term> terms;
        for (int v : vars) terms.push_back({v, 1.0});
        model.add_constraint(std::move(terms), lp::Sense::kEq,
                             demand.demand(t, c));
      }
    }
  }

  const lp::Solution solution = lp::solve(model, options_.lp_options);
  if (!solution.optimal()) {
    throw SolveError("joint provisioning LP returned " +
                     lp::to_string(solution.status));
  }

  ProvisionResult result{CapacityPlan::zeros(world, topo),
                         PlacementMatrix(slots, config_count, world.dc_count()),
                         0.0,
                         {},
                         {}};
  CapacityPlan combined = CapacityPlan::zeros(world, topo);
  for (std::size_t x = 0; x < world.dc_count(); ++x) {
    if (cp_var[x] >= 0) {
      combined.dc_serving_cores[x] = solution.values[cp_var[x]];
    }
  }
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    if (np_var[l] >= 0) combined.link_gbps[l] = solution.values[np_var[l]];
  }
  // F0 placement (block 0) for reporting and allocation.
  for (TimeSlot t = 0; t < slots; ++t) {
    for (std::size_t c = 0; c < config_count; ++c) {
      const auto& vars =
          blocks[0].s_var[static_cast<std::size_t>(t) * config_count + c];
      for (std::size_t k = 0; k < vars.size(); ++k) {
        result.base_placement.set_calls(
            t, c, blocks[0].plans[c].candidates[k], solution.values[vars[k]]);
      }
    }
  }
  ScenarioOutcome joint_outcome;
  joint_outcome.scenario = FailureScenario::none();
  joint_outcome.scenario.name = "F0+DC-failures(joint)";
  joint_outcome.required = combined;
  joint_outcome.lp_objective = solution.objective;
  joint_outcome.lp_iterations = solution.iterations;
  result.scenarios.push_back(joint_outcome);

  // Link-failure scenarios on top, sequentially, reusing the joint plan.
  if (options_.include_link_failures) {
    for (LinkId link : topo.link_ids()) {
      const FailureScenario scenario =
          FailureScenario::link_failure(link, topo);
      ScenarioOutcome outcome =
          solve_scenario(demand, scenario, nullptr,
                         options_.capacity_reuse ? &combined : nullptr);
      combined = max_capacity(combined, outcome.required);
      result.scenarios.push_back(std::move(outcome));
    }
  }

  // The joint LP has no separate F0 capacity to call "serving"; report the
  // F0 placement's own peaks as serving and the rest as backup.
  const UsageProfile f0_usage =
      compute_usage(result.base_placement, demand, ctx_);
  const std::vector<double> f0_peaks = f0_usage.dc_peaks();
  for (std::size_t x = 0; x < world.dc_count(); ++x) {
    const double total = combined.dc_serving_cores[x];
    result.capacity.dc_serving_cores[x] = std::min(f0_peaks[x], total);
    result.capacity.dc_backup_cores[x] =
        std::max(0.0, total - result.capacity.dc_serving_cores[x]);
  }
  result.capacity.link_gbps = combined.link_gbps;
  result.mean_acl_ms = mean_acl_ms(result.base_placement, demand, ctx_);
  result.server_budget_cores = split_server_budgets(world, result.capacity);
  return result;
}

ProvisionResult SwitchboardProvisioner::provision(
    const DemandMatrix& demand, const ScenarioBasisHint* f0_warm,
    ScenarioBasisHint* f0_basis_out) const {
  obs::Span span("prov.provision", obs::Subsystem::kProvisioner);
  const World& world = *ctx_.world;
  const Topology& topo = *ctx_.topology;

  if (options_.with_backup && options_.peak_aware_backup &&
      options_.joint_scenarios) {
    return provision_joint(demand);
  }

  // Failure scenarios are enumerated whenever backup capacity is wanted;
  // the additive ablation below only replaces the COMPUTE backup policy
  // (WAN must still survive failures either way).
  std::vector<FailureScenario> scenarios;
  if (options_.with_backup) {
    scenarios =
        enumerate_failures(world, topo, options_.include_link_failures);
  } else {
    scenarios.push_back(FailureScenario::none());
  }

  ProvisionResult result{CapacityPlan::zeros(world, topo),
                         PlacementMatrix(demand.slot_count(),
                                         demand.config_count(),
                                         world.dc_count()),
                         0.0,
                         {},
                         {}};
  CapacityPlan combined = CapacityPlan::zeros(world, topo);
  CapacityPlan serving = combined;

  // F0 first, always sequentially: it defines `serving`, the base placement,
  // and the basis hint every failure scenario warm-starts from (failure LPs
  // are the F0 LP minus one DC's or link's columns, so its optimal basis is
  // usually a few pivots from theirs).
  ScenarioBasisHint f0_basis;
  {
    PlacementMatrix placement(demand.slot_count(), demand.config_count(),
                              world.dc_count());
    obs::Span f0_span("prov.scenario", obs::Subsystem::kProvisioner);
    f0_span.attr(obs::AttrKey::kScenario, 0);
    ScenarioOutcome outcome = solve_scenario(demand, scenarios.front(),
                                             &placement, nullptr, f0_warm,
                                             &f0_basis);
    f0_span.finish();
    serving = outcome.required;
    combined = outcome.required;
    result.base_placement = std::move(placement);
    result.scenarios.push_back(std::move(outcome));
  }
  if (f0_basis_out != nullptr) *f0_basis_out = f0_basis;

  const bool chained =
      options_.capacity_reuse &&
      options_.floor_mode == ProvisionOptions::FloorMode::kChained;
  if (chained || scenarios.size() <= 1) {
    // Under chained reuse (Eq 7/8 coupling), each scenario sees the running
    // combined plan as a free floor and pays only for increments — an
    // inherently sequential recurrence.
    for (std::size_t f = 1; f < scenarios.size(); ++f) {
      const CapacityPlan* floors = options_.capacity_reuse ? &combined : nullptr;
      obs::Span s("prov.scenario", obs::Subsystem::kProvisioner);
      s.attr(obs::AttrKey::kScenario, static_cast<std::int64_t>(f));
      ScenarioOutcome outcome =
          solve_scenario(demand, scenarios[f], nullptr, floors, &f0_basis);
      s.finish();
      combined = max_capacity(combined, outcome.required);
      result.scenarios.push_back(std::move(outcome));
    }
  } else {
    // kFromBase (or no reuse at all): every failure scenario floors on the
    // fixed F0 requirement, so the solves commute and can fan out over a
    // thread pool. Results are combined in enumeration order, making the
    // plan bit-identical whatever the thread count.
    const CapacityPlan* floors = options_.capacity_reuse ? &serving : nullptr;
    // Fan-out spans run on pool threads where no span is open; parent them
    // explicitly under this provision() span so the trace stays nested.
    const std::uint64_t fan_parent = obs::SpanRecorder::current_span();
    auto solve_one = [&, fan_parent](std::size_t f) {
      obs::Span s("prov.scenario", obs::Subsystem::kProvisioner,
                  obs::kNoSimTime, fan_parent);
      s.attr(obs::AttrKey::kScenario, static_cast<std::int64_t>(f));
      return solve_scenario(demand, scenarios[f], nullptr, floors, &f0_basis);
    };
    std::vector<ScenarioOutcome> outcomes;
    outcomes.reserve(scenarios.size() - 1);
    if (options_.scenario_threads == 1) {
      for (std::size_t f = 1; f < scenarios.size(); ++f) {
        outcomes.push_back(solve_one(f));
      }
    } else {
      ThreadPool pool(options_.scenario_threads);
      std::vector<std::future<ScenarioOutcome>> futures;
      futures.reserve(scenarios.size() - 1);
      for (std::size_t f = 1; f < scenarios.size(); ++f) {
        futures.push_back(pool.submit(solve_one, f));
      }
      for (auto& fut : futures) outcomes.push_back(fut.get());
    }
    for (ScenarioOutcome& outcome : outcomes) {
      combined = max_capacity(combined, outcome.required);
      result.scenarios.push_back(std::move(outcome));
    }
  }

  // Serving/backup split: serving is the no-failure requirement; backup is
  // whatever extra the worst failure scenario forces per resource.
  result.capacity = CapacityPlan::zeros(world, topo);
  for (std::size_t x = 0; x < world.dc_count(); ++x) {
    result.capacity.dc_serving_cores[x] = serving.dc_serving_cores[x];
    result.capacity.dc_backup_cores[x] = std::max(
        0.0, combined.dc_serving_cores[x] - serving.dc_serving_cores[x]);
  }
  result.capacity.link_gbps = combined.link_gbps;

  if (options_.with_backup && !options_.peak_aware_backup) {
    // §4.1/4.2 ablation (Fig 4b's "default backup plan"): serving follows
    // locality (each config wholly at its min-ACL feasible DC, as in the
    // figure), and compute backup is the additive Eq 1-2 LP on those
    // serving peaks — no reuse of off-peak slack. WAN keeps the
    // failure-scenario peaks computed above (link capacity must survive
    // failures under any compute-backup policy).
    const std::vector<ConfigPlan> plans = build_config_plans(
        demand, FailureScenario::none(), ctx_, options_.acl_threshold_ms);
    PlacementMatrix local(demand.slot_count(), demand.config_count(),
                          world.dc_count());
    for (std::size_t c = 0; c < demand.config_count(); ++c) {
      std::size_t best = 0;
      for (std::size_t k = 1; k < plans[c].profiles.size(); ++k) {
        if (plans[c].profiles[k].acl_ms < plans[c].profiles[best].acl_ms) {
          best = k;
        }
      }
      for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
        const double d = demand.demand(t, c);
        if (d > 0.0) local.set_calls(t, c, plans[c].candidates[best], d);
      }
    }
    const UsageProfile local_usage = compute_usage(local, demand, ctx_);
    result.capacity.dc_serving_cores = local_usage.dc_peaks();
    result.capacity.dc_backup_cores =
        solve_backup_lp(result.capacity.dc_serving_cores);
    const std::vector<double> local_links = local_usage.link_peaks();
    for (std::size_t l = 0; l < topo.link_count(); ++l) {
      result.capacity.link_gbps[l] =
          std::max(result.capacity.link_gbps[l], local_links[l]);
    }
    result.base_placement = std::move(local);
  }

  result.mean_acl_ms = mean_acl_ms(result.base_placement, demand, ctx_);
  result.server_budget_cores = split_server_budgets(world, result.capacity);
  return result;
}

}  // namespace sb
