// Reproduces Table 4: the difference between resources provisioned from
// ground-truth call counts and from Holt-Winters forecasts, per scheme,
// with and without backup. A negative value means the forecast
// OVER-provisioned relative to ground truth (the paper saw -5..-13% almost
// everywhere, within +/-13% overall, with SB's without-backup WAN the one
// under-provisioned (+) entry).
//
// Flags: --history_weeks=8 --slot_s=7200 --configs=20 --link_failures=1
#include <iostream>

#include "baselines/locality_first.h"
#include "baselines/round_robin.h"
#include "bench_util.h"
#include "core/provisioner.h"
#include "forecast/forecaster.h"

namespace sb {
namespace {

struct Resources {
  double cores = 0.0;
  double wan = 0.0;
};

double gap_pct(double truth, double forecast) {
  return truth > 0.0 ? 100.0 * (truth - forecast) / truth : 0.0;
}

}  // namespace

int run(int argc, char** argv) {
  const std::size_t history_weeks =
      bench::arg_size(argc, argv, "history_weeks", 8);
  const double slot_s = bench::arg_double(argc, argv, "slot_s", 7200.0);
  const std::size_t config_count = bench::arg_size(argc, argv, "configs", 20);
  const bool link_failures =
      bench::arg_double(argc, argv, "link_failures", 1.0) != 0.0;

  Scenario scenario = make_apac_scenario();
  const TraceGenerator& trace = *scenario.trace;
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};

  // Forecast each top config's arrivals one week past the history, then
  // carve out the same design day (the horizon week's Tuesday) from both
  // the forecast and the ground-truth processes.
  const double bucket_s = trace.params().bucket_s;
  const auto season = static_cast<std::size_t>(kSecondsPerWeek / bucket_s);
  const double history_end = history_weeks * kSecondsPerWeek;
  const double horizon_end = history_end + kSecondsPerWeek;
  const auto horizon_buckets =
      static_cast<std::size_t>((horizon_end - history_end) / bucket_s);

  // §5.2's cushion: hold out the last history week as validation, compare
  // the aggregate forecast against its ground truth, and inflate the real
  // forecast by the estimated factor.
  const double validation_end = history_end - kSecondsPerWeek;
  const auto week_buckets =
      static_cast<std::size_t>(kSecondsPerWeek / bucket_s);
  std::vector<double> validation_truth(week_buckets, 0.0);
  std::vector<double> validation_forecast(week_buckets, 0.0);
  std::vector<std::vector<double>> forecasts;
  std::vector<ConfigId> configs;
  for (std::size_t i = 0; i < config_count; ++i) {
    const auto validation_history =
        trace.arrival_count_series(i, 0.0, validation_end);
    const auto predicted =
        forecast_calls(validation_history, season, week_buckets);
    const auto actual =
        trace.arrival_count_series(i, validation_end, history_end);
    for (std::size_t b = 0; b < week_buckets; ++b) {
      validation_truth[b] += actual[b];
      validation_forecast[b] += predicted[b];
    }
    const auto history = trace.arrival_count_series(i, 0.0, history_end);
    forecasts.push_back(forecast_calls(history, season, horizon_buckets));
    configs.push_back(trace.universe().configs[i].config);
  }
  const double cushion =
      estimate_cushion(validation_truth, validation_forecast, 2.0, 0.75);
  std::cout << "validation cushion: " << format_double(cushion, 3) << "\n";
  const DemandMatrix forecast_week =
      demand_from_arrivals(forecasts, configs, bucket_s,
                           trace.params().mean_duration_s, cushion);

  // Design day: Tuesday of the horizon week, resampled to slot_s slots.
  const auto day_start_bucket =
      static_cast<std::size_t>(kSecondsPerDay / bucket_s);
  const auto buckets_per_slot = static_cast<std::size_t>(slot_s / bucket_s);
  const auto slots =
      static_cast<std::size_t>(kSecondsPerDay / slot_s);
  DemandMatrix forecast_demand = make_demand_matrix(configs, slots);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    for (std::size_t t = 0; t < slots; ++t) {
      double acc = 0.0;
      for (std::size_t b = 0; b < buckets_per_slot; ++b) {
        acc += forecast_week.demand(
            static_cast<TimeSlot>(day_start_bucket + t * buckets_per_slot + b),
            c);
      }
      forecast_demand.set_demand(static_cast<TimeSlot>(t), c,
                                 acc / buckets_per_slot);
    }
  }
  const DemandMatrix truth_full = trace.expected_demand(
      slot_s, history_end + kSecondsPerDay, history_end + 2 * kSecondsPerDay);
  DemandMatrix truth_demand = make_demand_matrix(configs, slots);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    for (std::size_t t = 0; t < slots; ++t) {
      truth_demand.set_demand(static_cast<TimeSlot>(t), c,
                              truth_full.demand(static_cast<TimeSlot>(t), c));
    }
  }

  std::cout << "Table 4: provisioning gap, ground truth vs forecast "
               "(negative = forecast over-provisioned)\n"
            << "history " << history_weeks << " weeks, horizon 1 week, "
            << config_count << " configs, slot " << slot_s / 3600.0 << "h\n"
            << "truth demand total "
            << format_double(truth_demand.total(), 0) << ", forecast total "
            << format_double(forecast_demand.total(), 0) << "\n";

  for (const bool with_backup : {false, true}) {
    print_banner(std::cout, with_backup ? "With backup" : "Without backup");
    TextTable table({"Scheme", "Cores gap %", "WAN gap %", "paper cores",
                     "paper WAN"});
    auto provision = [&](const std::string& scheme,
                         const DemandMatrix& demand) -> Resources {
      if (scheme == "RR") {
        const BaselineResult r = provision_round_robin(
            demand, ctx, {with_backup, link_failures});
        return {r.capacity.total_cores(), r.capacity.total_wan_gbps()};
      }
      if (scheme == "LF") {
        const BaselineResult r = provision_locality_first(
            demand, ctx, {with_backup, link_failures});
        return {r.capacity.total_cores(), r.capacity.total_wan_gbps()};
      }
      ProvisionOptions options;
      options.with_backup = with_backup;
      options.include_link_failures = link_failures;
      const ProvisionResult r =
          SwitchboardProvisioner(ctx, options).provision(demand);
      return {r.capacity.total_cores(), r.capacity.total_wan_gbps()};
    };
    struct PaperRow {
      const char* scheme;
      const char* cores_without;
      const char* wan_without;
      const char* cores_with;
      const char* wan_with;
    };
    for (const PaperRow row :
         {PaperRow{"RR", "-5%", "-13%", "-5%", "-13%"},
          PaperRow{"LF", "-6%", "-8%", "-7%", "-11%"},
          PaperRow{"SB", "-5%", "+10%", "-5%", "-11%"}}) {
      const Resources truth = provision(row.scheme, truth_demand);
      const Resources forecast = provision(row.scheme, forecast_demand);
      table.row()
          .cell(row.scheme)
          .cell(gap_pct(truth.cores, forecast.cores), 1)
          .cell(gap_pct(truth.wan, forecast.wan), 1)
          .cell(with_backup ? row.cores_with : row.cores_without)
          .cell(with_backup ? row.wan_with : row.wan_without);
    }
    std::cout << table;
  }
  std::cout << "\n(paper takeaway: forecast-based provisioning lands within "
               "+/-13% of ground-truth provisioning)\n";
  return 0;
}

}  // namespace sb

int main(int argc, char** argv) { return sb::run(argc, argv); }
