// Plain logistic regression trained with mini-batch-free SGD. §8 feeds the
// MOMC's per-order probabilities (plus simple history features) through this
// model to predict each participant's attendance at the next meeting
// instance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sb {

struct LogisticOptions {
  std::size_t epochs = 30;
  double learning_rate = 0.1;
  double l2 = 1e-4;
};

class LogisticRegression {
 public:
  /// @param feature_count dimensionality (a bias term is added internally).
  explicit LogisticRegression(std::size_t feature_count);

  /// Trains on (features, label) pairs; labels are 0/1. Rows must all have
  /// feature_count entries.
  void fit(const std::vector<std::vector<double>>& features,
           const std::vector<std::uint8_t>& labels,
           const LogisticOptions& options = {});

  [[nodiscard]] double predict_prob(std::span<const double> features) const;

  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }

 private:
  std::size_t feature_count_;
  std::vector<double> weights_;  ///< feature_count_ + 1 (bias last)
};

}  // namespace sb
