// Greedy scenario minimizer: given a FuzzCase that fails some oracle,
// repeatedly tries structurally smaller candidates (fewer calls, fewer
// fault events, fewer DCs, a shorter window) and keeps each one that still
// fails the SAME oracle — so the minimizer never wanders onto a different
// bug than the one it was asked to isolate. The result is what sb_fuzz
// writes as a repro file.
#pragma once

#include <cstddef>

#include "check/fuzz_case.h"
#include "check/oracles.h"

namespace sb::check {

struct ShrinkOptions {
  /// Full pass-sequence iterations; each round re-runs every pass and the
  /// loop stops early once a round makes no progress (fixpoint).
  std::size_t max_rounds = 8;
};

struct ShrinkResult {
  FuzzCase best;          ///< smallest case still failing `oracle`
  std::string oracle;     ///< the oracle being preserved
  std::size_t attempts = 0;   ///< candidate executions tried
  std::size_t successes = 0;  ///< candidates accepted (strict reductions)
};

/// Minimizes `failing` (which must fail at least one oracle under
/// `check_opts`; throws InvalidArgument otherwise). Every accepted
/// candidate fails with the same first oracle as the input.
[[nodiscard]] ShrinkResult shrink_case(const FuzzCase& failing,
                                       const CheckOptions& check_opts = {},
                                       const ShrinkOptions& opts = {});

}  // namespace sb::check
