// The allocator interface the discrete-event simulator drives, with
// adapters for Switchboard's realtime selector and the RR/LF baselines.
// All three see the same event stream (call start -> config freeze -> call
// end), which is how §6.4's migration comparison is measured. Fault events
// (DC/link down/up from a fault::FaultSchedule) flow through the optional
// on_* fault hooks; schemes that ignore them simply keep placing calls on
// dead DCs.
#pragma once

#include <memory>

#include "core/controller.h"
#include "core/realtime.h"
#include "fault/failover.h"
#include "fault/health_table.h"

namespace sb {

/// Per-call allocation decisions a scheme makes during simulation.
///
/// Thread safety: Simulator::run drives an allocator from one thread;
/// Simulator::run_concurrent issues events for *different* calls from many
/// threads at once (same-call events keep single-thread affinity via shard
/// partitioning). Only internally synchronized implementations — the
/// lock-striped RealtimeSelector and the Switchboard controller — may be
/// driven concurrently; the RR/LF baselines are single-threaded only.
/// Fault hooks are invoked with every driver thread quiesced (the
/// simulator's fault barrier), so they never race call events.
class CallAllocator {
 public:
  virtual ~CallAllocator() = default;

  /// Batch brackets from the batched simulator engine: a replay thread
  /// surrounds each run of call events with batch_begin()/batch_end(now),
  /// where `now` is the time of the batch's last event. Defaults are no-ops
  /// (baselines, bare selector). The Switchboard adapters use them to
  /// amortize the controller's plan-swap shared lock over the whole batch,
  /// and the closed-loop AdaptiveController runs its re-plan tick in
  /// batch_end — after the shared lock is released, so the install's
  /// exclusive acquisition cannot deadlock against the caller. The
  /// simulator guarantees a batch never spans a fault barrier.
  virtual void batch_begin() {}
  virtual void batch_end(SimTime /*now*/) {}

  /// A call starts with its first joiner; returns the initial DC.
  virtual DcId on_call_start(CallId call, LocationId first_joiner,
                             SimTime now) = 0;

  /// The config freezes A seconds in; may migrate the call.
  virtual FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                        SimTime now) = 0;

  /// Freeze overload for drivers that already hold the config's interned
  /// id (the simulator resolves every record's ConfigId up front). `id`,
  /// when valid, must be the registry's id for `config`; the default
  /// ignores it, plan-aware schemes forward it so the selector skips the
  /// full-config hash lookup on its hot path.
  virtual FreezeResult on_config_frozen(CallId call, ConfigId id,
                                        const CallConfig& config,
                                        SimTime now) {
    (void)id;
    return on_config_frozen(call, config, now);
  }

  virtual void on_call_end(CallId call, SimTime now) = 0;

  /// Fault hooks; defaults ignore the fault entirely (RR keeps round-
  /// robining onto the dead DC — the §3.1 strawman has no failover story).
  /// on_dc_failed reports which live calls moved where and which dropped so
  /// the simulator can re-point its usage accounting.
  virtual fault::FailoverOutcome on_dc_failed(DcId /*dc*/, SimTime /*now*/) {
    return {};
  }
  virtual void on_dc_recovered(DcId /*dc*/, SimTime /*now*/) {}
  virtual void on_link_failed(LinkId /*link*/, SimTime /*now*/) {}
  virtual void on_link_recovered(LinkId /*link*/, SimTime /*now*/) {}
  /// Media-server faults (fleet-aware schemes only; baselines have no
  /// server notion and ignore them).
  virtual fault::FailoverOutcome on_server_failed(ServerId /*server*/,
                                                  SimTime /*now*/) {
    return {};
  }
  virtual void on_server_recovered(ServerId /*server*/, SimTime /*now*/) {}
  /// Controller-worker crash/restart (sb_cluster HA only). A worker kill is
  /// invisible to the media plane — calls keep running, nothing moves or
  /// drops — so the default (and the returned outcome) is empty; the
  /// cluster allocator overrides these to drop and re-adopt shard state.
  virtual fault::FailoverOutcome on_worker_failed(WorkerId /*worker*/,
                                                  SimTime /*now*/) {
    return {};
  }
  virtual void on_worker_recovered(WorkerId /*worker*/, SimTime /*now*/) {}

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Adapter over Switchboard's RealtimeSelector (plan-driven behaviour).
/// Optionally owns fault plumbing: when `health` is the table the selector
/// was constructed against, DC/link faults flip it and dc failures drain
/// through the selector with `budget_cores` as the per-DC backup budget.
class SwitchboardAllocator : public CallAllocator {
 public:
  /// Borrows the selector (and health table, if any); both must outlive
  /// the allocator.
  explicit SwitchboardAllocator(RealtimeSelector& selector,
                                fault::HealthTable* health = nullptr,
                                std::vector<double> budget_cores = {})
      : selector_(&selector),
        health_(health),
        budget_cores_(std::move(budget_cores)) {}

  DcId on_call_start(CallId call, LocationId first_joiner,
                     SimTime now) override {
    return selector_->on_call_start(call, first_joiner, now);
  }
  FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                SimTime now) override {
    return selector_->on_config_frozen(call, config, now);
  }
  FreezeResult on_config_frozen(CallId call, ConfigId id,
                                const CallConfig& config,
                                SimTime now) override {
    return selector_->on_config_frozen(call, config, now, id);
  }
  void on_call_end(CallId call, SimTime now) override {
    selector_->on_call_end(call, now);
  }
  fault::FailoverOutcome on_dc_failed(DcId dc, SimTime now) override {
    if (health_ != nullptr) health_->set_dc(dc, false);
    return selector_->drain_dc(dc, now, budget_cores_);
  }
  void on_dc_recovered(DcId dc, SimTime /*now*/) override {
    if (health_ != nullptr) health_->set_dc(dc, true);
  }
  void on_link_failed(LinkId link, SimTime /*now*/) override {
    if (health_ != nullptr) health_->set_link(link, false);
  }
  void on_link_recovered(LinkId link, SimTime /*now*/) override {
    if (health_ != nullptr) health_->set_link(link, true);
  }
  fault::FailoverOutcome on_server_failed(ServerId server,
                                          SimTime now) override {
    if (selector_->packer() == nullptr) return {};
    if (health_ != nullptr) health_->set_server(server, false);
    return selector_->drain_server(server, now, budget_cores_);
  }
  void on_server_recovered(ServerId server, SimTime /*now*/) override {
    if (health_ != nullptr && health_->server_count() > 0) {
      health_->set_server(server, true);
    }
  }
  [[nodiscard]] std::string name() const override { return "switchboard"; }

 private:
  RealtimeSelector* selector_;
  fault::HealthTable* health_;
  std::vector<double> budget_cores_;
};

/// Adapter over the full Switchboard controller (selector + KV persistence
/// + health table + provisioned backup budgets). The controller computes
/// failover budgets from its own provision result, so this is the
/// end-to-end configuration the §5.3 failover bench drives.
class ControllerAllocator : public CallAllocator {
 public:
  /// Borrows the controller; it must outlive the allocator.
  explicit ControllerAllocator(Switchboard& controller)
      : controller_(&controller) {}

  /// Batch amortization: holds the controller's plan-swap shared lock for
  /// the whole batch and routes events through the *_locked variants —
  /// one lock RMW pair per batch instead of per event. The in-batch flag is
  /// thread-local (each replay thread brackets its own batches; the lock
  /// itself is shared-mode, so threads overlap freely).
  void batch_begin() override {
    controller_->lock_events_shared();
    ++batch_depth();
  }
  void batch_end(SimTime /*now*/) override {
    --batch_depth();
    controller_->unlock_events_shared();
  }

  DcId on_call_start(CallId call, LocationId first_joiner,
                     SimTime now) override {
    if (batch_depth() > 0) {
      return controller_->call_started_locked(call, first_joiner, now);
    }
    return controller_->call_started(call, first_joiner, now);
  }
  FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                SimTime now) override {
    if (batch_depth() > 0) {
      return controller_->config_frozen_locked(call, config, now);
    }
    return controller_->config_frozen(call, config, now);
  }
  FreezeResult on_config_frozen(CallId call, ConfigId id,
                                const CallConfig& config,
                                SimTime now) override {
    if (batch_depth() > 0) {
      return controller_->config_frozen_locked(call, config, now, id);
    }
    return controller_->config_frozen(call, config, now, id);
  }
  void on_call_end(CallId call, SimTime now) override {
    if (batch_depth() > 0) {
      controller_->call_ended_locked(call, now);
      return;
    }
    controller_->call_ended(call, now);
  }
  fault::FailoverOutcome on_dc_failed(DcId dc, SimTime now) override {
    return controller_->dc_failed(dc, now);
  }
  void on_dc_recovered(DcId dc, SimTime now) override {
    controller_->dc_recovered(dc, now);
  }
  void on_link_failed(LinkId link, SimTime now) override {
    controller_->link_failed(link, now);
  }
  void on_link_recovered(LinkId link, SimTime now) override {
    controller_->link_recovered(link, now);
  }
  fault::FailoverOutcome on_server_failed(ServerId server,
                                          SimTime now) override {
    return controller_->server_failed(server, now);
  }
  void on_server_recovered(ServerId server, SimTime now) override {
    controller_->server_recovered(server, now);
  }
  [[nodiscard]] std::string name() const override { return "switchboard"; }

 private:
  /// Per-thread batch nesting depth. Function-local so the header stays
  /// ODR-clean; one replay thread never interleaves two allocators' batches
  /// (the simulator brackets each batch on the thread that replays it).
  static int& batch_depth() {
    thread_local int depth = 0;
    return depth;
  }

  Switchboard* controller_;
};

/// §3.1 Round-Robin: cycles a per-region counter over the region's DCs at
/// call start; never migrates (the spread, not the config, drives RR).
class RoundRobinAllocator : public CallAllocator {
 public:
  explicit RoundRobinAllocator(EvalContext ctx);

  DcId on_call_start(CallId call, LocationId first_joiner,
                     SimTime now) override;
  FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                SimTime now) override;
  void on_call_end(CallId call, SimTime now) override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  EvalContext ctx_;
  /// Region membership and DC lists resolved once at construction: call
  /// start is two vector indexes, not a string hash + map lookup per call.
  std::vector<std::size_t> location_region_;   ///< LocationId -> region index
  std::vector<std::vector<DcId>> region_dcs_;  ///< region index -> its DCs
  std::vector<std::size_t> region_cursor_;     ///< region index -> RR cursor
  std::unordered_map<CallId, DcId> active_;
};

/// §3.2 Locality-First: closest DC to the first joiner, then migrates to
/// the config's min-ACL DC at freeze time ("requires knowing the exact
/// spread of all participants", §6.4). On a DC failure it re-homes the
/// dead DC's calls to the closest surviving DC — with no provisioned
/// backup pool, it never drops a call but freely overruns whatever
/// capacity the surviving DCs were given (the §5.3 bench's contrast).
class LocalityFirstAllocator : public CallAllocator {
 public:
  explicit LocalityFirstAllocator(EvalContext ctx);

  DcId on_call_start(CallId call, LocationId first_joiner,
                     SimTime now) override;
  FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                SimTime now) override;
  void on_call_end(CallId call, SimTime now) override;
  fault::FailoverOutcome on_dc_failed(DcId dc, SimTime now) override;
  void on_dc_recovered(DcId dc, SimTime now) override;
  [[nodiscard]] std::string name() const override { return "locality-first"; }

  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }

 private:
  struct Active {
    DcId dc;
    LocationId first_joiner;
  };
  [[nodiscard]] bool dc_up(DcId dc) const { return dc_down_[dc.value()] == 0; }
  [[nodiscard]] std::vector<DcId> up_dcs() const;

  EvalContext ctx_;
  std::vector<DcId> all_dcs_;
  std::vector<std::uint8_t> dc_down_;
  std::unordered_map<CallId, Active> active_;
  std::uint64_t migrations_ = 0;
};

}  // namespace sb
