// Tests for the sb_span tracing layer: span field/parent correctness, the
// flight-recorder ring-wrap contract (last N retained), concurrent
// record-while-collect safety (the TSan target for this subsystem), Chrome
// trace-event export validity, and the -DSB_TRACING=OFF stub contract.
//
// The recorder is process-global; tests reset() it up front and filter
// collected spans by their own names so they stay order-independent.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/json.h"
#include "obs/span.h"
#include "obs/trace_export.h"

namespace sb::obs {
namespace {

std::vector<SpanData> collect_named(const std::string& name) {
  std::vector<SpanData> out;
  for (const SpanData& s : SpanRecorder::global().collect()) {
    if (name == s.name) out.push_back(s);
  }
  return out;
}

#ifdef SB_TRACING_ENABLED

TEST(SpanTest, RecordsFieldsAttrsAndNesting) {
  SpanRecorder& recorder = SpanRecorder::global();
  recorder.reset();
  recorder.set_enabled(true);
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    Span outer("test.outer", Subsystem::kCheck, 42.5);
    outer.attr(AttrKey::kCallId, 7);
    outer.attr(AttrKey::kDc, 3);
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    {
      Span inner("test.inner", Subsystem::kLp);
      inner.attr(AttrKey::kIterations, 12);
      inner_id = inner.id();
    }
  }
  const std::vector<SpanData> outer_spans = collect_named("test.outer");
  const std::vector<SpanData> inner_spans = collect_named("test.inner");
  ASSERT_EQ(outer_spans.size(), 1u);
  ASSERT_EQ(inner_spans.size(), 1u);
  const SpanData& outer = outer_spans.front();
  const SpanData& inner = inner_spans.front();

  EXPECT_EQ(outer.id, outer_id);
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(outer.subsystem, Subsystem::kCheck);
  EXPECT_DOUBLE_EQ(outer.sim_time, 42.5);
  ASSERT_EQ(outer.attr_count, 2u);
  ASSERT_NE(outer.find_attr(AttrKey::kCallId), nullptr);
  EXPECT_EQ(outer.find_attr(AttrKey::kCallId)->value, 7);
  ASSERT_NE(outer.find_attr(AttrKey::kDc), nullptr);
  EXPECT_EQ(outer.find_attr(AttrKey::kDc)->value, 3);
  EXPECT_EQ(outer.find_attr(AttrKey::kIterations), nullptr);

  EXPECT_EQ(inner.id, inner_id);
  EXPECT_EQ(inner.parent, outer_id);  // inherited from the enclosing span
  EXPECT_EQ(inner.subsystem, Subsystem::kLp);
  EXPECT_DOUBLE_EQ(inner.sim_time, kNoSimTime);
  // The child starts after and ends before its parent.
  EXPECT_GE(inner.wall_start_ns, outer.wall_start_ns);
  EXPECT_LE(inner.wall_end_ns, outer.wall_end_ns);
  EXPECT_GE(inner.duration_s(), 0.0);
}

TEST(SpanTest, ExplicitParentCrossesThreadsAndZeroForcesRoot) {
  SpanRecorder& recorder = SpanRecorder::global();
  recorder.reset();
  recorder.set_enabled(true);
  EXPECT_EQ(SpanRecorder::current_span(), 0u);
  // Pin the main thread to its own ring before the worker runs: buffers are
  // recycled through a free list at thread exit, so without this the worker's
  // released buffer would be the one main() grabs and the tids would alias.
  { Span pin("test.fanout_pin", Subsystem::kCheck); }
  std::uint64_t outer_id = 0;
  {
    Span outer("test.fanout", Subsystem::kCheck);
    outer_id = outer.id();
    EXPECT_EQ(SpanRecorder::current_span(), outer_id);

    // The fan-out idiom: capture the open span's id, hand it to a worker.
    const std::uint64_t parent = SpanRecorder::current_span();
    std::thread worker([parent] {
      Span child("test.fanout_child", Subsystem::kCheck, kNoSimTime, parent);
    });
    worker.join();

    // parent = 0 forces a root even inside an open span.
    Span forced("test.forced_root", Subsystem::kCheck, kNoSimTime, 0);
  }
  EXPECT_EQ(SpanRecorder::current_span(), 0u);

  const std::vector<SpanData> child = collect_named("test.fanout_child");
  const std::vector<SpanData> forced = collect_named("test.forced_root");
  const std::vector<SpanData> outer = collect_named("test.fanout");
  ASSERT_EQ(child.size(), 1u);
  ASSERT_EQ(forced.size(), 1u);
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(child.front().parent, outer_id);
  EXPECT_NE(child.front().thread, outer.front().thread);
  EXPECT_EQ(forced.front().parent, 0u);
}

TEST(SpanTest, AttrOverflowIsSilentlyDropped) {
  SpanRecorder& recorder = SpanRecorder::global();
  recorder.reset();
  recorder.set_enabled(true);
  {
    Span span("test.attr_overflow", Subsystem::kCheck);
    for (std::size_t a = 0; a < kSpanAttrMax + 3; ++a) {
      span.attr(AttrKey::kCallId, static_cast<std::int64_t>(a));
    }
  }
  const std::vector<SpanData> spans = collect_named("test.attr_overflow");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans.front().attr_count, kSpanAttrMax);
}

TEST(SpanTest, EarlyFinishIsIdempotentAndRestoresScope) {
  SpanRecorder& recorder = SpanRecorder::global();
  recorder.reset();
  recorder.set_enabled(true);
  {
    Span span("test.early_finish", Subsystem::kCheck);
    span.finish();
    EXPECT_EQ(SpanRecorder::current_span(), 0u);
    span.finish();  // second finish (and the destructor) must not re-record
  }
  EXPECT_EQ(collect_named("test.early_finish").size(), 1u);
}

TEST(SpanTest, DisabledRecorderRecordsNothing) {
  SpanRecorder& recorder = SpanRecorder::global();
  recorder.reset();
  recorder.set_enabled(false);
  {
    Span span("test.disabled", Subsystem::kCheck);
    span.attr(AttrKey::kCallId, 1);
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_TRUE(collect_named("test.disabled").empty());
  recorder.set_enabled(true);
}

TEST(SpanTest, RingWrapRetainsTheMostRecentSpans) {
  SpanRecorder& recorder = SpanRecorder::global();
  recorder.reset();
  recorder.set_enabled(true);
  const std::uint64_t capacity = recorder.ring_capacity();
  const std::uint64_t total = capacity + 512;
  // A dedicated thread gets its own ring; joining before collect() makes
  // the retained window exact (no in-flight writer).
  std::thread writer([total] {
    for (std::uint64_t i = 0; i < total; ++i) {
      Span span("test.wrap", Subsystem::kCheck);
      span.attr(AttrKey::kCallId, static_cast<std::int64_t>(i));
    }
  });
  writer.join();

  const std::vector<SpanData> spans = collect_named("test.wrap");
  // The flight window, not all `total`. collect() conservatively discards
  // the single oldest slot of a wrapped ring (the one the NEXT push would
  // alias — it cannot tell no push is in flight), hence capacity - 1.
  EXPECT_GE(spans.size(), capacity - 1);
  EXPECT_LE(spans.size(), capacity);
  for (const SpanData& s : spans) {
    const SpanAttr* seq = s.find_attr(AttrKey::kCallId);
    ASSERT_NE(seq, nullptr);
    // Only the most recent `capacity` spans survive the wrap.
    EXPECT_GE(seq->value, static_cast<std::int64_t>(total - capacity));
  }
  EXPECT_GE(recorder.dropped(), total - capacity);
}

TEST(SpanTest, ConcurrentRecordAndCollectKeepsSpansWellFormed) {
  SpanRecorder& recorder = SpanRecorder::global();
  recorder.reset();
  recorder.set_enabled(true);
  constexpr std::size_t kThreads = 8;
  constexpr std::int64_t kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        Span outer("test.stress", Subsystem::kCheck);
        outer.attr(AttrKey::kShard, static_cast<std::int64_t>(t));
        outer.attr(AttrKey::kCallId, i);
        if (i % 16 == 0) {
          Span inner("test.stress_child", Subsystem::kCheck);
          inner.attr(AttrKey::kCallId, i);
        }
      }
    });
  }
  // Hammer collect() while the writers are recording: every span that comes
  // back must be internally consistent (torn slots are discarded, never
  // returned half-written).
  std::thread reader([&stop, kPerThread = kPerThread] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const SpanData& s : SpanRecorder::global().collect()) {
        ASSERT_NE(s.name, nullptr);
        ASSERT_LE(s.attr_count, kSpanAttrMax);
        if (std::string("test.stress") == s.name) {
          ASSERT_EQ(s.attr_count, 2u);
          const SpanAttr* shard = s.find_attr(AttrKey::kShard);
          const SpanAttr* seq = s.find_attr(AttrKey::kCallId);
          ASSERT_NE(shard, nullptr);
          ASSERT_NE(seq, nullptr);
          ASSERT_GE(shard->value, 0);
          ASSERT_LT(shard->value, static_cast<std::int64_t>(kThreads));
          ASSERT_GE(seq->value, 0);
          ASSERT_LT(seq->value, kPerThread);
        }
      }
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Quiescent check: the final snapshot holds at most one ring per writer
  // and only well-formed spans.
  const std::vector<SpanData> spans = collect_named("test.stress");
  EXPECT_LE(spans.size(), kThreads * recorder.ring_capacity());
  EXPECT_FALSE(spans.empty());
}

TEST(SpanTest, ChromeTraceExportIsValidNestedJson) {
  SpanRecorder& recorder = SpanRecorder::global();
  recorder.reset();
  recorder.set_enabled(true);
  std::uint64_t parent_id = 0;
  {
    Span parent("test.export_parent", Subsystem::kDrain, 120.0);
    parent.attr(AttrKey::kDc, 2);
    parent_id = parent.id();
    Span child("test.export_child", Subsystem::kRealtime);
    child.attr(AttrKey::kDrainTier, 1);
  }
  std::vector<SpanData> spans;
  for (const SpanData& s : recorder.collect()) {
    if (std::string(s.name).rfind("test.export", 0) == 0) spans.push_back(s);
  }
  ASSERT_EQ(spans.size(), 2u);

  std::ostringstream out;
  write_chrome_trace(out, spans);
  const check::Json doc = check::Json::parse(out.str());
  EXPECT_EQ(doc.get("displayTimeUnit").as_string(), "ms");
  const check::Json::Array& events = doc.get("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);

  const check::Json* parent_ev = nullptr;
  const check::Json* child_ev = nullptr;
  for (const check::Json& ev : events) {
    const std::string& name = ev.get("name").as_string();
    if (name == "test.export_parent") parent_ev = &ev;
    if (name == "test.export_child") child_ev = &ev;
  }
  ASSERT_NE(parent_ev, nullptr);
  ASSERT_NE(child_ev, nullptr);
  EXPECT_EQ(parent_ev->get("ph").as_string(), "X");
  EXPECT_EQ(parent_ev->get("cat").as_string(), "drain");
  EXPECT_EQ(child_ev->get("cat").as_string(), "realtime");
  EXPECT_EQ(parent_ev->get("args").get("span").as_u64(), parent_id);
  EXPECT_DOUBLE_EQ(parent_ev->get("args").get("sim_time").as_number(), 120.0);
  EXPECT_EQ(parent_ev->get("args").get("dc").as_i64(), 2);
  // The child references its parent and nests inside it on the timeline
  // (which is what makes Perfetto draw it as a child slice).
  EXPECT_EQ(child_ev->get("args").get("parent").as_u64(), parent_id);
  EXPECT_EQ(child_ev->get("args").get("drain_tier").as_i64(), 1);
  const double p_ts = parent_ev->get("ts").as_number();
  const double p_end = p_ts + parent_ev->get("dur").as_number();
  const double c_ts = child_ev->get("ts").as_number();
  const double c_end = c_ts + child_ev->get("dur").as_number();
  EXPECT_GE(c_ts + 1e-9, p_ts);
  EXPECT_LE(c_end, p_end + 1e-9);
}

#else  // !SB_TRACING_ENABLED — the stub contract.

TEST(SpanStubTest, EverythingCompilesToNoops) {
  SpanRecorder& recorder = SpanRecorder::global();
  recorder.configure({.enabled = true, .ring_capacity = 64});
  EXPECT_FALSE(recorder.enabled());
  EXPECT_EQ(recorder.ring_capacity(), 0u);
  EXPECT_EQ(SpanRecorder::current_span(), 0u);
  {
    Span span("test.stub", Subsystem::kCheck, 1.0);
    span.attr(AttrKey::kCallId, 7);
    EXPECT_EQ(span.id(), 0u);
    span.finish();
  }
  EXPECT_TRUE(recorder.collect().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
  recorder.reset();
  EXPECT_TRUE(collect_named("test.stub").empty());
}

#endif  // SB_TRACING_ENABLED

// SpanData consumers are always compiled, whichever mode the recorder is in.
TEST(SpanStatsTest, AggregatesByNameSortedByTotal) {
  std::vector<SpanData> spans;
  const auto push = [&spans](const char* name, std::int64_t start_ns,
                             std::int64_t end_ns) {
    SpanData s;
    s.name = name;
    s.subsystem = Subsystem::kLp;
    s.wall_start_ns = start_ns;
    s.wall_end_ns = end_ns;
    spans.push_back(s);
  };
  push("test.stats_a", 0, 1000);
  push("test.stats_a", 0, 3000);
  push("test.stats_b", 0, 10000);

  const std::vector<SpanStats> stats = span_stats(spans);
  ASSERT_EQ(stats.size(), 2u);
  // Sorted by descending total duration: b (10 us) before a (4 us).
  EXPECT_STREQ(stats[0].name, "test.stats_b");
  EXPECT_EQ(stats[0].count, 1u);
  EXPECT_DOUBLE_EQ(stats[0].total_s, 1e-5);
  EXPECT_STREQ(stats[1].name, "test.stats_a");
  EXPECT_EQ(stats[1].count, 2u);
  EXPECT_DOUBLE_EQ(stats[1].total_s, 4e-6);
  EXPECT_DOUBLE_EQ(stats[1].mean_s(), 2e-6);
  EXPECT_DOUBLE_EQ(stats[1].min_s, 1e-6);
  EXPECT_DOUBLE_EQ(stats[1].max_s, 3e-6);

  std::ostringstream out;
  write_span_stats(out, stats);
  EXPECT_NE(out.str().find("test.stats_b"), std::string::npos);
  EXPECT_NE(out.str().find("test.stats_a"), std::string::npos);

  EXPECT_TRUE(span_stats({}).empty());
  std::ostringstream empty;
  write_span_stats(empty, {});
  EXPECT_TRUE(empty.str().empty());
}

}  // namespace
}  // namespace sb::obs
