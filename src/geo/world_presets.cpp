#include "geo/world_presets.h"

#include <algorithm>

namespace sb {

namespace {

struct CountrySpec {
  const char* name;
  double lat;
  double lon;
  double utc;
  double weight;
  const char* region;
};

void add_countries(World& world, const CountrySpec* specs, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto& s = specs[i];
    world.add_location(
        Location{s.name, s.lat, s.lon, s.utc, s.weight, s.region});
  }
}

GeoModel finish(World world, std::size_t knn) {
  Topology topo = build_knn_topology(world, knn);
  LatencyMatrix lat = LatencyMatrix::from_topology(world, topo);
  return GeoModel{std::move(world), std::move(topo), std::move(lat)};
}

}  // namespace

GeoModel make_apac_world() {
  // Approximate centroids / major-city coordinates; weights are a plausible
  // relative share of conferencing participants, not real Teams data.
  static constexpr CountrySpec kApac[] = {
      {"IN", 19.0, 77.0, 5.5, 16.0, "APAC"},
      {"JP", 36.0, 138.0, 9.0, 14.0, "APAC"},
      {"SG", 1.35, 103.8, 8.0, 7.0, "APAC"},
      {"HK", 22.3, 114.2, 8.0, 8.0, "APAC"},
      {"AU", -33.9, 151.2, 10.0, 8.0, "APAC"},
      {"ID", -6.2, 106.8, 7.0, 9.0, "APAC"},
      {"KR", 37.5, 127.0, 9.0, 7.0, "APAC"},
      {"TH", 13.7, 100.5, 7.0, 6.0, "APAC"},
      {"PH", 14.6, 121.0, 8.0, 6.0, "APAC"},
      {"MY", 3.1, 101.7, 8.0, 5.0, "APAC"},
      {"VN", 21.0, 105.8, 7.0, 5.0, "APAC"},
      {"NZ", -36.8, 174.8, 12.0, 3.0, "APAC"},
      {"TW", 25.0, 121.5, 8.0, 5.0, "APAC"},
      {"BD", 23.8, 90.4, 6.0, 4.0, "APAC"},
      {"PK", 24.9, 67.0, 5.0, 4.0, "APAC"},
  };
  World world;
  add_countries(world, kApac, std::size(kApac));
  // Core costs vary by DC (relative units), which is what the joint
  // compute+network idea (§4.3) trades against link costs.
  world.add_datacenter({"DC-India", *world.find_location("IN"), 0.90});
  world.add_datacenter({"DC-Japan", *world.find_location("JP"), 1.25});
  world.add_datacenter({"DC-Singapore", *world.find_location("SG"), 1.40});
  world.add_datacenter({"DC-HongKong", *world.find_location("HK"), 1.30});
  world.add_datacenter({"DC-Sydney", *world.find_location("AU"), 1.35});
  return finish(std::move(world), 3);
}

GeoModel make_global_world() {
  static constexpr CountrySpec kGlobal[] = {
      // APAC
      {"IN", 19.0, 77.0, 5.5, 22.0, "APAC"},
      {"JP", 36.0, 138.0, 9.0, 12.0, "APAC"},
      {"SG", 1.35, 103.8, 8.0, 4.0, "APAC"},
      {"HK", 22.3, 114.2, 8.0, 5.0, "APAC"},
      {"AU", -33.9, 151.2, 10.0, 6.0, "APAC"},
      {"ID", -6.2, 106.8, 7.0, 6.0, "APAC"},
      {"KR", 37.5, 127.0, 9.0, 5.0, "APAC"},
      {"PH", 14.6, 121.0, 8.0, 4.0, "APAC"},
      {"TH", 13.7, 100.5, 7.0, 3.0, "APAC"},
      // North America
      {"US-E", 40.7, -74.0, -5.0, 25.0, "NA"},
      {"US-C", 41.9, -87.6, -6.0, 12.0, "NA"},
      {"US-W", 37.4, -122.1, -8.0, 15.0, "NA"},
      {"CA", 43.7, -79.4, -5.0, 6.0, "NA"},
      {"MX", 19.4, -99.1, -6.0, 4.0, "NA"},
      {"BR", -23.5, -46.6, -3.0, 6.0, "NA"},
      // Europe
      {"UK", 51.5, -0.1, 0.0, 10.0, "EU"},
      {"IE", 53.3, -6.3, 0.0, 2.0, "EU"},
      {"FR", 48.9, 2.3, 1.0, 7.0, "EU"},
      {"DE", 52.5, 13.4, 1.0, 9.0, "EU"},
      {"NL", 52.4, 4.9, 1.0, 4.0, "EU"},
      {"ES", 40.4, -3.7, 1.0, 4.0, "EU"},
      {"IT", 41.9, 12.5, 1.0, 4.0, "EU"},
      {"PL", 52.2, 21.0, 1.0, 3.0, "EU"},
      {"SE", 59.3, 18.1, 1.0, 2.0, "EU"},
      {"ZA", -26.2, 28.0, 2.0, 2.0, "EU"},
      {"AE", 25.2, 55.3, 4.0, 3.0, "EU"},
      {"IL", 32.1, 34.8, 2.0, 2.0, "EU"},
  };
  World world;
  add_countries(world, kGlobal, std::size(kGlobal));
  world.add_datacenter({"DC-India", *world.find_location("IN"), 0.90});
  world.add_datacenter({"DC-Japan", *world.find_location("JP"), 1.25});
  world.add_datacenter({"DC-Singapore", *world.find_location("SG"), 1.40});
  world.add_datacenter({"DC-Sydney", *world.find_location("AU"), 1.35});
  world.add_datacenter({"DC-Virginia", *world.find_location("US-E"), 1.00});
  world.add_datacenter({"DC-California", *world.find_location("US-W"), 1.15});
  world.add_datacenter({"DC-SaoPaulo", *world.find_location("BR"), 1.30});
  world.add_datacenter({"DC-Dublin", *world.find_location("IE"), 1.05});
  world.add_datacenter({"DC-Frankfurt", *world.find_location("DE"), 1.20});
  world.add_datacenter({"DC-Dubai", *world.find_location("AE"), 1.45});
  return finish(std::move(world), 3);
}

GeoModel make_random_world(Rng& rng, const RandomWorldParams& params) {
  require(params.dc_count >= 1, "make_random_world: need at least one DC");
  require(params.location_count >= params.dc_count,
          "make_random_world: need at least as many locations as DCs");
  World world;
  for (std::size_t i = 0; i < params.location_count; ++i) {
    const double lat = rng.uniform(-params.lat_span_deg / 2,
                                   params.lat_span_deg / 2);
    const double lon = rng.uniform(-params.lon_span_deg / 2,
                                   params.lon_span_deg / 2);
    world.add_location(Location{"C" + std::to_string(i), lat, lon,
                                lon / 15.0,  // offset tracks longitude
                                rng.uniform(1.0, 10.0), "R0"});
  }
  // Distinct DC host locations.
  std::vector<std::size_t> hosts(params.location_count);
  for (std::size_t i = 0; i < hosts.size(); ++i) hosts[i] = i;
  rng.shuffle(hosts);
  for (std::size_t d = 0; d < params.dc_count; ++d) {
    world.add_datacenter(
        {"DC" + std::to_string(d),
         LocationId(static_cast<std::uint32_t>(hosts[d])),
         rng.uniform(0.8, 1.5)});
  }
  return finish(std::move(world), params.knn);
}

void add_uniform_fleet(World& world, std::size_t servers_per_dc,
                       double cores_per_server) {
  require(servers_per_dc >= 1, "add_uniform_fleet: need at least one server");
  require(cores_per_server > 0.0,
          "add_uniform_fleet: cores_per_server must be positive");
  for (DcId dc : world.dc_ids()) {
    for (std::size_t s = 0; s < servers_per_dc; ++s) {
      world.add_server({world.datacenter(dc).name + "-ms" + std::to_string(s),
                        dc, cores_per_server});
    }
  }
}

}  // namespace sb
