file(REMOVE_RECURSE
  "libsb_common.a"
)
