// Deterministic pseudo-random number generation for workload synthesis.
//
// Everything in Switchboard's trace generation must be reproducible from a
// seed, so modules take an Rng& rather than seeding local engines. The
// engine is xoshiro256++ (small state, excellent statistical quality, fast),
// seeded via splitmix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace sb {

/// xoshiro256++ engine with distribution helpers used by the trace
/// generator and samplers. Not thread-safe; use one Rng per thread.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5b0a2dULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Poisson-distributed count with the given mean (>= 0). Uses Knuth's
  /// method for small means and a normal approximation for large ones.
  std::uint64_t poisson(double mean);

  /// Bernoulli trial.
  bool chance(double p);

  /// Samples an index from an unnormalized weight vector. Weights must be
  /// non-negative with positive sum.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each module or
  /// thread its own stream without correlated output.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Zipf(s) sampler over ranks {0, .., n-1}: P(rank k) proportional to
/// 1/(k+1)^s. Precomputes the CDF so draws are O(log n). Models the
/// heavy-tailed call-config popularity of Fig 7(c).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t operator()(Rng& rng) const;

  /// Probability mass of rank k.
  double pmf(std::size_t k) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace sb
