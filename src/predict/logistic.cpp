#include "predict/logistic.h"

#include <cmath>

#include "common/error.h"

namespace sb {

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

LogisticRegression::LogisticRegression(std::size_t feature_count)
    : feature_count_(feature_count), weights_(feature_count + 1, 0.0) {
  require(feature_count >= 1, "LogisticRegression: need features");
}

void LogisticRegression::fit(const std::vector<std::vector<double>>& features,
                             const std::vector<std::uint8_t>& labels,
                             const LogisticOptions& options) {
  require(features.size() == labels.size() && !features.empty(),
          "LogisticRegression::fit: shape mismatch or empty");
  for (const auto& row : features) {
    require(row.size() == feature_count_,
            "LogisticRegression::fit: bad feature row");
  }
  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    // Decaying step size stabilizes the tail of training.
    const double lr =
        options.learning_rate / (1.0 + 0.1 * static_cast<double>(epoch));
    for (std::size_t i = 0; i < features.size(); ++i) {
      const double p = predict_prob(features[i]);
      const double err = static_cast<double>(labels[i]) - p;
      for (std::size_t j = 0; j < feature_count_; ++j) {
        weights_[j] += lr * (err * features[i][j] - options.l2 * weights_[j]);
      }
      weights_.back() += lr * err;  // bias, not regularized
    }
  }
}

double LogisticRegression::predict_prob(std::span<const double> features) const {
  require(features.size() == feature_count_,
          "LogisticRegression::predict_prob: bad feature row");
  double z = weights_.back();
  for (std::size_t j = 0; j < feature_count_; ++j) {
    z += weights_[j] * features[j];
  }
  return sigmoid(z);
}

}  // namespace sb
