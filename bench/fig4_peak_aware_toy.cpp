// Reproduces Fig 4: the peak-aware capacity-planning toy. Three co-equal
// DCs (Japan, Hong Kong, India) with time-shifted demand peaking at 100,
// 110, and 110 cores. (a) locality-first serving needs (100, 110, 110);
// (b) the default (additive, Eq 1-2) backup plan inflates every DC to 160
// cores (480 total); (c) the peak-aware plan re-purposes off-peak serving
// cores as backup and needs no extra capacity at all (320 total).
#include <iostream>

#include "common/table.h"
#include "core/provisioner.h"

namespace sb {
namespace {

struct ToyWorld {
  World world;
  Topology topology;
  LatencyMatrix latency;
  CallConfigRegistry registry;
  LoadModel loads{{1.0, 1.5, 3.0}, {1.0, 15.0, 35.0}};

  ToyWorld() : world(make_world()), topology(world), latency(3, 3) {
    topology.add_link(LocationId(0), LocationId(1), 20.0, 1e5);
    topology.add_link(LocationId(1), LocationId(2), 20.0, 1e5);
    topology.add_link(LocationId(0), LocationId(2), 20.0, 1e5);
    topology.compute_paths();
    latency = LatencyMatrix::from_topology(world, topology, 8.0);
  }

  static World make_world() {
    World w;
    w.add_location({"JP", 0.0, 0.0, 9.0, 1.0, "R"});
    w.add_location({"HK", 0.0, 8.0, 8.0, 1.0, "R"});
    w.add_location({"IN", 8.0, 0.0, 5.5, 1.0, "R"});
    w.add_datacenter({"DC-JP", LocationId(0), 1.0});
    w.add_datacenter({"DC-HK", LocationId(1), 1.0});
    w.add_datacenter({"DC-IN", LocationId(2), 1.0});
    return w;
  }

  [[nodiscard]] EvalContext ctx() {
    return EvalContext{&world, &topology, &latency, &registry, &loads};
  }
};

}  // namespace

int run() {
  ToyWorld w;
  std::vector<ConfigId> configs;
  for (std::uint32_t u = 0; u < 3; ++u) {
    configs.push_back(w.registry.intern(
        CallConfig::make({{LocationId(u), 1}}, MediaType::kAudio)));
  }
  DemandMatrix demand = make_demand_matrix(configs, 3);
  const double jp[3] = {100, 50, 40};
  const double hk[3] = {60, 110, 50};
  const double in[3] = {20, 40, 110};
  for (TimeSlot t = 0; t < 3; ++t) {
    demand.set_demand(t, 0, jp[t]);
    demand.set_demand(t, 1, hk[t]);
    demand.set_demand(t, 2, in[t]);
  }

  std::cout << "Fig 4(a): demand (cores) per time slot\n";
  TextTable d({"slot", "JP", "HK", "IN"});
  for (TimeSlot t = 0; t < 3; ++t) {
    d.row()
        .cell("T" + std::to_string(t + 1))
        .cell(demand.demand(t, 0), 0)
        .cell(demand.demand(t, 1), 0)
        .cell(demand.demand(t, 2), 0);
  }
  std::cout << d;

  ProvisionOptions additive;
  additive.include_link_failures = false;
  additive.peak_aware_backup = false;
  const ProvisionResult fig_b =
      SwitchboardProvisioner(w.ctx(), additive).provision(demand);

  ProvisionOptions peak_aware;
  peak_aware.include_link_failures = false;
  const ProvisionResult fig_c =
      SwitchboardProvisioner(w.ctx(), peak_aware).provision(demand);

  auto print_plan = [&](const char* title, const ProvisionResult& r,
                        double paper_total) {
    print_banner(std::cout, title);
    TextTable t({"DC", "serving", "backup", "total"});
    for (DcId dc : w.world.dc_ids()) {
      t.row()
          .cell(w.world.datacenter(dc).name)
          .cell(r.capacity.dc_serving_cores[dc.value()], 0)
          .cell(r.capacity.dc_backup_cores[dc.value()], 0)
          .cell(r.capacity.dc_total_cores(dc), 0);
    }
    std::cout << t << "total cores: "
              << format_double(r.capacity.total_cores(), 0) << " (paper: "
              << format_double(paper_total, 0) << ")\n";
  };

  print_plan("Fig 4(b): default backup plan (Eq 1-2, additive)", fig_b, 480);
  print_plan("Fig 4(c): peak-aware backup plan (re-purposed serving cores)",
             fig_c, 320);
  std::cout << "\npeak-aware saving: "
            << format_double(fig_b.capacity.total_cores() -
                                 fig_c.capacity.total_cores(),
                             0)
            << " cores ("
            << format_double(100.0 * (1.0 - fig_c.capacity.total_cores() /
                                                fig_b.capacity.total_cores()),
                             0)
            << "%)\n";
  return 0;
}

}  // namespace sb

int main() { return sb::run(); }
