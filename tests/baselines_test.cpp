// Tests for the RR and LF baselines and the §3 provisioning relationships
// between them (local peaks vs global peak, backup skew, WAN ordering).
#include <gtest/gtest.h>

#include "baselines/locality_first.h"
#include "baselines/round_robin.h"
#include "trace/scenario.h"

namespace sb {
namespace {

/// Shared APAC workload: one business day of expected demand over the top
/// configs.
class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(make_apac_scenario());
    loads_ = new LoadModel(LoadModel::paper_default());
    ctx_ = new EvalContext{&scenario_->world(), &scenario_->topology(),
                           &scenario_->latency(), scenario_->registry.get(),
                           loads_};
    // Tuesday, 30-minute slots, top-30 configs by base rate.
    DemandMatrix full = scenario_->trace->expected_demand(
        1800.0, kSecondsPerDay, 2 * kSecondsPerDay);
    std::vector<ConfigId> top;
    for (std::size_t i = 0; i < 30; ++i) {
      top.push_back(full.config_at(i));
    }
    demand_ = new DemandMatrix(make_demand_matrix(top, full.slot_count()));
    for (TimeSlot t = 0; t < full.slot_count(); ++t) {
      for (std::size_t c = 0; c < top.size(); ++c) {
        demand_->set_demand(t, c, full.demand(t, c));
      }
    }
  }
  static void TearDownTestSuite() {
    delete demand_;
    delete ctx_;
    delete loads_;
    delete scenario_;
  }

  static Scenario* scenario_;
  static LoadModel* loads_;
  static EvalContext* ctx_;
  static DemandMatrix* demand_;
};
Scenario* BaselineFixture::scenario_ = nullptr;
LoadModel* BaselineFixture::loads_ = nullptr;
EvalContext* BaselineFixture::ctx_ = nullptr;
DemandMatrix* BaselineFixture::demand_ = nullptr;

TEST_F(BaselineFixture, RoundRobinSpreadsEqually) {
  const PlacementMatrix p = round_robin_placement(*demand_, *ctx_);
  const std::size_t n = scenario_->world().dc_count();
  for (TimeSlot t = 0; t < demand_->slot_count(); t += 7) {
    for (std::size_t c = 0; c < demand_->config_count(); c += 5) {
      const double d = demand_->demand(t, c);
      for (std::size_t x = 0; x < n; ++x) {
        EXPECT_NEAR(p.calls(t, c, DcId(static_cast<std::uint32_t>(x))),
                    d / static_cast<double>(n), 1e-9);
      }
    }
  }
}

TEST_F(BaselineFixture, LocalityFirstPicksMinAclDc) {
  const PlacementMatrix p = locality_first_placement(*demand_, *ctx_);
  for (std::size_t c = 0; c < demand_->config_count(); ++c) {
    const CallConfig& config =
        scenario_->registry->get(demand_->config_at(c));
    const DcId best = min_acl_dc(config, scenario_->world().dc_ids(),
                                 scenario_->latency());
    for (TimeSlot t = 0; t < demand_->slot_count(); t += 11) {
      const double d = demand_->demand(t, c);
      EXPECT_NEAR(p.calls(t, c, best), d, 1e-9);
    }
  }
}

TEST_F(BaselineFixture, AclOrderingLfBeatsRr) {
  // §6: LF's mean ACL is much lower than RR's (paper: 0.45x).
  const BaselineOptions options{.with_backup = false};
  const BaselineResult rr = provision_round_robin(*demand_, *ctx_, options);
  const BaselineResult lf =
      provision_locality_first(*demand_, *ctx_, options);
  EXPECT_LT(lf.mean_acl_ms, 0.7 * rr.mean_acl_ms);
}

TEST_F(BaselineFixture, CoresOrderingLfAboveRr) {
  // §3.2: sum of time-shifted local peaks > global peak, so LF provisions
  // more serving cores than RR.
  const BaselineOptions options{.with_backup = false};
  const BaselineResult rr = provision_round_robin(*demand_, *ctx_, options);
  const BaselineResult lf =
      provision_locality_first(*demand_, *ctx_, options);
  EXPECT_GT(lf.capacity.total_cores(), rr.capacity.total_cores() * 1.0);
}

TEST_F(BaselineFixture, WanOrderingRrAboveLf) {
  // §3.1: RR sprays calls to remote DCs and burns far more WAN than LF.
  const BaselineOptions options{.with_backup = false};
  const BaselineResult rr = provision_round_robin(*demand_, *ctx_, options);
  const BaselineResult lf =
      provision_locality_first(*demand_, *ctx_, options);
  EXPECT_GT(rr.capacity.total_wan_gbps(), 2.0 * lf.capacity.total_wan_gbps());
}

TEST_F(BaselineFixture, BackupIncreasesCapacity) {
  const BaselineOptions with{.with_backup = true,
                             .include_link_failures = false};
  const BaselineOptions without{.with_backup = false};
  const BaselineResult rr_with = provision_round_robin(*demand_, *ctx_, with);
  const BaselineResult rr_without =
      provision_round_robin(*demand_, *ctx_, without);
  EXPECT_GT(rr_with.capacity.total_cores(),
            rr_without.capacity.total_cores());
  // RR backup per DC is serving/(n-1).
  const std::size_t n = scenario_->world().dc_count();
  for (std::size_t x = 0; x < n; ++x) {
    EXPECT_NEAR(rr_with.capacity.dc_backup_cores[x],
                rr_with.capacity.dc_serving_cores[x] /
                    static_cast<double>(n - 1),
                1e-9);
  }

  const BaselineResult lf_with =
      provision_locality_first(*demand_, *ctx_, with);
  const BaselineResult lf_without =
      provision_locality_first(*demand_, *ctx_, without);
  EXPECT_GT(lf_with.capacity.total_cores(),
            lf_without.capacity.total_cores());
  // LF's Eq 1-2 backup must cover any single DC's serving capacity.
  double total_backup = 0.0;
  for (double b : lf_with.capacity.dc_backup_cores) total_backup += b;
  for (std::size_t x = 0; x < n; ++x) {
    EXPECT_GE(total_backup - lf_with.capacity.dc_backup_cores[x] + 1e-6,
              lf_with.capacity.dc_serving_cores[x]);
  }
}

TEST_F(BaselineFixture, BackupRaisesWanForLf) {
  // Table 3: LF's WAN jumps sharply once failure scenarios are considered
  // (0.18 -> 0.55 of RR in the paper).
  const BaselineOptions with{.with_backup = true};
  const BaselineOptions without{.with_backup = false};
  const BaselineResult lf_with =
      provision_locality_first(*demand_, *ctx_, with);
  const BaselineResult lf_without =
      provision_locality_first(*demand_, *ctx_, without);
  EXPECT_GT(lf_with.capacity.total_wan_gbps(),
            1.5 * lf_without.capacity.total_wan_gbps());
}

TEST_F(BaselineFixture, ServingCapacityCoversEveryScenarioPlacement) {
  // RR's per-DC serving+backup must fit any single-DC failure re-spread.
  const BaselineOptions options{.with_backup = true,
                                .include_link_failures = false};
  const BaselineResult rr = provision_round_robin(*demand_, *ctx_, options);
  const std::size_t n = scenario_->world().dc_count();
  const UsageProfile base = compute_usage(rr.placement, *demand_, *ctx_);
  const auto base_peaks = base.dc_peaks();
  for (std::size_t x = 0; x < n; ++x) {
    // After a failure, survivors carry n/(n-1) of their equal share.
    const double shifted =
        base_peaks[x] * static_cast<double>(n) / static_cast<double>(n - 1);
    EXPECT_LE(shifted, rr.capacity.dc_total_cores(
                           DcId(static_cast<std::uint32_t>(x))) +
                           1e-6);
  }
}

}  // namespace
}  // namespace sb
