// Capacity plans: how many MP cores each DC gets and how many Gbps each WAN
// link gets — the output of MP capacity provisioning (§2.1) for Switchboard
// and both baselines, plus the Table 3 cost/usage accounting.
#pragma once

#include <vector>

#include "common/types.h"
#include "geo/topology.h"
#include "geo/world.h"

namespace sb {

/// Provisioned capacity, split into serving and backup components per DC
/// (Switchboard's peak-aware plan may fold backup into serving slack, in
/// which case dc_backup is the increment over the no-failure requirement).
struct CapacityPlan {
  std::vector<double> dc_serving_cores;  ///< indexed by DcId
  std::vector<double> dc_backup_cores;   ///< indexed by DcId
  std::vector<double> link_gbps;         ///< indexed by LinkId

  [[nodiscard]] double dc_total_cores(DcId dc) const;
  [[nodiscard]] double total_cores() const;
  [[nodiscard]] double total_wan_gbps() const;

  /// Eq 3's cost: sum of DC_Cost(x) * cores(x) + WAN_Cost(l) * gbps(l).
  [[nodiscard]] double compute_cost(const World& world) const;
  [[nodiscard]] double network_cost(const Topology& topo) const;
  [[nodiscard]] double total_cost(const World& world,
                                  const Topology& topo) const;

  /// Empty plan shaped for a world/topology.
  static CapacityPlan zeros(const World& world, const Topology& topo);
};

/// Takes the per-resource maximum of two plans (Eq 7/8's combination across
/// failure scenarios). Shapes must match.
CapacityPlan max_capacity(const CapacityPlan& a, const CapacityPlan& b);

}  // namespace sb
