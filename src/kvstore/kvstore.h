// In-memory sharded key-value store standing in for the Azure Redis
// instance the paper's controller writes call state to (§6.6). Each
// operation optionally injects a simulated network round-trip in the
// 0.3-4.2 ms range the paper reports for writes, which is what makes the
// Fig 10 throughput experiment scale with writer threads: threads overlap
// their waits on the (remote) store.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace sb {

struct KvStoreOptions {
  std::size_t shard_count = 16;
  bool inject_latency = true;
  /// Injected per-op latency is log-uniform over [min, max] ms, matching
  /// the paper's observed 0.3-4.2 ms write latencies.
  double min_latency_ms = 0.3;
  double max_latency_ms = 4.2;
  std::uint64_t seed = 0x5b0a;
};

/// Thread-safe string store with per-shard locking. Latency injection
/// happens outside the shard lock (it models the network, not the server),
/// so concurrent clients overlap their waits.
class KvStore {
 public:
  explicit KvStore(KvStoreOptions options = {});

  void set(const std::string& key, std::string value);
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  /// Atomically adds `delta` to an integer value (missing keys start at 0);
  /// returns the new value.
  std::int64_t incr(const std::string& key, std::int64_t delta);
  /// Removes a key; returns whether it existed.
  bool erase(const std::string& key);

  [[nodiscard]] std::size_t size() const;

  /// Snapshot view over the per-instance latency histogram (kept for
  /// backward compatibility with the pre-sb::obs API). With SB_METRICS=OFF
  /// all fields are zero.
  struct OpStats {
    std::uint64_t ops = 0;
    double total_latency_ms = 0.0;
    double min_latency_ms = 0.0;
    double max_latency_ms = 0.0;

    [[nodiscard]] double mean_latency_ms() const {
      return ops == 0 ? 0.0 : total_latency_ms / static_cast<double>(ops);
    }
  };
  [[nodiscard]] OpStats stats() const;
  void reset_stats();

  /// Per-instance op latency distribution (seconds). The same samples also
  /// feed the process-wide `sb.kvstore.op_latency_s` registry histogram.
  [[nodiscard]] obs::HistogramData latency_histogram() const {
    return latency_.collect();
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::string> map;
  };

  [[nodiscard]] Shard& shard_for(const std::string& key) const;
  /// Sleeps for a sampled latency and records it; no-op when injection is
  /// disabled.
  void simulate_network() const;

  KvStoreOptions options_;
  mutable std::vector<Shard> shards_;
  /// Sharded-atomic latency histogram: the realtime write path records one
  /// sample with no lock (the old OpStats took a mutex per op for min/max).
  mutable obs::Histogram latency_;
  obs::Counter& ops_metric_;            ///< sb.kvstore.ops
  obs::Histogram& latency_metric_;      ///< sb.kvstore.op_latency_s
};

}  // namespace sb
