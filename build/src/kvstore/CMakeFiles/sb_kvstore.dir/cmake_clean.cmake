file(REMOVE_RECURSE
  "CMakeFiles/sb_kvstore.dir/kvstore.cpp.o"
  "CMakeFiles/sb_kvstore.dir/kvstore.cpp.o.d"
  "libsb_kvstore.a"
  "libsb_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
