file(REMOVE_RECURSE
  "CMakeFiles/calls_io_test.dir/calls_io_test.cpp.o"
  "CMakeFiles/calls_io_test.dir/calls_io_test.cpp.o.d"
  "calls_io_test"
  "calls_io_test.pdb"
  "calls_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calls_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
