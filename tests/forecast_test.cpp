// Tests for Holt-Winters and the forecasting pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.h"
#include "common/rng.h"
#include "forecast/forecaster.h"

namespace sb {
namespace {

/// Seasonal series with trend and optional noise:
/// base + slope*t + amp*sin(2 pi t / season) + noise.
std::vector<double> make_series(std::size_t n, std::size_t season,
                                double base, double slope, double amp,
                                double noise_sd = 0.0,
                                std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (std::size_t t = 0; t < n; ++t) {
    xs[t] = base + slope * static_cast<double>(t) +
            amp * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                           static_cast<double>(season));
    if (noise_sd > 0.0) xs[t] += rng.normal(0.0, noise_sd);
  }
  return xs;
}

TEST(HoltWintersTest, RecoversCleanSeasonalSeries) {
  const std::size_t season = 12;
  const auto series = make_series(12 * 8, season, 100.0, 0.5, 20.0);
  HoltWinters model = HoltWinters::fit(series, season);
  const auto forecast = model.forecast(season);
  for (std::size_t h = 0; h < season; ++h) {
    const std::size_t t = series.size() + h;
    const double truth =
        100.0 + 0.5 * static_cast<double>(t) +
        20.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                        static_cast<double>(season));
    EXPECT_NEAR(forecast[h], truth, 6.0) << "h=" << h;
  }
}

TEST(HoltWintersTest, TracksNoisySeriesWithinTolerance) {
  const std::size_t season = 24;
  const auto series = make_series(24 * 10, season, 200.0, 0.2, 60.0, 8.0);
  HoltWinters model = HoltWinters::fit(series, season);
  const auto forecast = model.forecast(season * 2);
  const auto truth = make_series(24 * 12, season, 200.0, 0.2, 60.0);
  double err = 0.0;
  for (std::size_t h = 0; h < forecast.size(); ++h) {
    err += std::abs(forecast[h] - truth[series.size() + h]);
  }
  err /= static_cast<double>(forecast.size());
  EXPECT_LT(err, 20.0);  // well under the seasonal amplitude
}

TEST(HoltWintersTest, FittedIsOneStepAhead) {
  const std::size_t season = 6;
  const auto series = make_series(36, season, 50.0, 0.0, 10.0);
  HoltWinters model(HoltWintersParams{0.3, 0.05, 0.1, season});
  model.train(series);
  EXPECT_EQ(model.fitted().size(), series.size());
  EXPECT_GT(model.sse(), 0.0);
}

TEST(HoltWintersTest, ValidatesInput) {
  EXPECT_THROW(HoltWinters(HoltWintersParams{0.0, 0.1, 0.1, 4}),
               InvalidArgument);
  EXPECT_THROW(HoltWinters(HoltWintersParams{0.5, 1.0, 0.1, 4}),
               InvalidArgument);
  HoltWinters m(HoltWintersParams{0.3, 0.1, 0.1, 10});
  std::vector<double> too_short(15, 1.0);
  EXPECT_THROW(m.train(too_short), InvalidArgument);
  EXPECT_THROW(m.forecast(3), InvalidArgument);  // untrained
}

TEST(ForecastCallsTest, ClampsNegativesToZero) {
  // Steeply declining series: the linear trend would go negative.
  std::vector<double> series;
  for (int t = 0; t < 40; ++t) {
    series.push_back(std::max(0.0, 100.0 - 3.0 * t));
  }
  const auto forecast = forecast_calls(series, 4, 30);
  for (double v : forecast) EXPECT_GE(v, 0.0);
}

TEST(NormalizedErrorsTest, DividesByTruthPeak) {
  std::vector<double> truth{0.0, 50.0, 100.0};
  std::vector<double> est{0.0, 40.0, 90.0};
  const NormalizedErrors e = normalized_errors(truth, est);
  EXPECT_NEAR(e.mae, (10.0 + 10.0) / 3.0 / 100.0, 1e-12);
  EXPECT_NEAR(e.rmse, std::sqrt(200.0 / 3.0) / 100.0, 1e-12);
}

TEST(NormalizedErrorsTest, ZeroTruthReportsRawError) {
  std::vector<double> truth{0.0, 0.0};
  std::vector<double> est{1.0, 1.0};
  const NormalizedErrors e = normalized_errors(truth, est);
  EXPECT_NEAR(e.mae, 1.0, 1e-12);
}

TEST(CushionTest, InflatesUnderForecasts) {
  // Forecast persistently 20% low on busy buckets -> cushion ~1.25.
  std::vector<double> truth;
  std::vector<double> forecast;
  for (int i = 0; i < 50; ++i) {
    truth.push_back(100.0);
    forecast.push_back(80.0);
  }
  EXPECT_NEAR(estimate_cushion(truth, forecast), 1.25, 1e-9);
}

TEST(CushionTest, NeverBelowOneAndCapped) {
  std::vector<double> truth{100.0, 100.0};
  std::vector<double> over{200.0, 200.0};
  EXPECT_DOUBLE_EQ(estimate_cushion(truth, over), 1.0);
  std::vector<double> way_under{10.0, 10.0};
  EXPECT_DOUBLE_EQ(estimate_cushion(truth, way_under, 2.0), 2.0);
}

TEST(DemandFromArrivalsTest, AppliesLittlesLawAndCushion) {
  // 10 arrivals per 1800 s bucket, 900 s mean duration -> concurrency 5.
  const std::vector<std::vector<double>> arrivals{{10.0, 0.0}};
  const DemandMatrix m =
      demand_from_arrivals(arrivals, {ConfigId(0)}, 1800.0, 900.0, 1.2);
  EXPECT_NEAR(m.demand(0, 0), 5.0 * 1.2, 1e-12);
  EXPECT_DOUBLE_EQ(m.demand(1, 0), 0.0);
}

TEST(DemandFromArrivalsTest, RejectsRaggedInput) {
  const std::vector<std::vector<double>> ragged{{1.0, 2.0}, {1.0}};
  EXPECT_THROW(
      demand_from_arrivals(ragged, {ConfigId(0), ConfigId(1)}, 1.0, 1.0),
      InvalidArgument);
}

// Seasonal edge cases the fuzzed trace histories actually produce: the
// forecast must degrade to a flat mean (or zeros), never to NaN/inf.
TEST(ForecastCallsTest, SeasonLongerThanHistoryFallsBackToFlatMean) {
  const std::vector<double> history{3.0, 5.0, 7.0};
  const std::vector<double> f = forecast_calls(history, 48, 6);
  ASSERT_EQ(f.size(), 6u);
  for (const double v : f) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, 5.0, 1e-9);  // mean of history
  }
}

TEST(ForecastCallsTest, AllZeroHistoryForecastsZerosNeverNan) {
  const std::vector<double> zeros(96, 0.0);
  const std::vector<double> f = forecast_calls(zeros, 24, 24);
  ASSERT_EQ(f.size(), 24u);
  for (const double v : f) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
  // A zero truth/forecast pair is the "zero iff zero" case of the Fig 9
  // metric — it must also not divide by the zero peak.
  const NormalizedErrors e = normalized_errors(zeros, zeros);
  EXPECT_DOUBLE_EQ(e.rmse, 0.0);
  EXPECT_DOUBLE_EQ(e.mae, 0.0);
}

TEST(ForecastCallsTest, SingleSeasonHistoryIsFlatMean) {
  // Exactly one season of history (< the two full seasons Holt-Winters
  // needs to initialize its seasonal profile) -> flat mean fallback.
  std::vector<double> one_season(24);
  for (std::size_t i = 0; i < one_season.size(); ++i) {
    one_season[i] = static_cast<double>(i);
  }
  const std::vector<double> f = forecast_calls(one_season, 24, 12);
  ASSERT_EQ(f.size(), 12u);
  for (const double v : f) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, 11.5, 1e-9);
  }
}

TEST(ForecastCallsTest, RejectsEmptyHistoryAndZeroSeason) {
  const std::vector<double> empty;
  EXPECT_THROW(forecast_calls(empty, 24, 4), InvalidArgument);
  const std::vector<double> some{1.0, 2.0};
  EXPECT_THROW(forecast_calls(some, 0, 4), InvalidArgument);
}

}  // namespace
}  // namespace sb
