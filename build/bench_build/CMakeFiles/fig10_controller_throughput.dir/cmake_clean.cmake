file(REMOVE_RECURSE
  "../bench/fig10_controller_throughput"
  "../bench/fig10_controller_throughput.pdb"
  "CMakeFiles/fig10_controller_throughput.dir/fig10_controller_throughput.cpp.o"
  "CMakeFiles/fig10_controller_throughput.dir/fig10_controller_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_controller_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
