#include "cluster/controller.h"

#include <algorithm>

#include "cluster/wal.h"
#include "common/error.h"
#include "obs/span.h"

namespace sb::cluster {

namespace {

obs::HistogramOptions readoption_histogram_options() {
  // Sim seconds from kill to re-adoption: sub-second (expedited on the next
  // event) up to hours (TTL on an idle range).
  return {.min = 1e-3, .max = 1e5, .bucket_count = 64};
}

obs::HistogramOptions replay_depth_histogram_options() {
  return {.min = 1.0, .max = 1e6, .bucket_count = 64};
}

}  // namespace

ClusterController::Metrics::Metrics()
    : lease_acquires(
          obs::MetricsRegistry::global().counter("sb.cluster.lease_acquires")),
      lease_renewals(
          obs::MetricsRegistry::global().counter("sb.cluster.lease_renewals")),
      lease_expiries(
          obs::MetricsRegistry::global().counter("sb.cluster.lease_expiries")),
      takeovers_expedited(obs::MetricsRegistry::global().counter(
          "sb.cluster.takeovers_expedited")),
      takeovers_ttl(
          obs::MetricsRegistry::global().counter("sb.cluster.takeovers_ttl")),
      replayed_records(obs::MetricsRegistry::global().counter(
          "sb.cluster.replayed_records")),
      stale_events_fenced(obs::MetricsRegistry::global().counter(
          "sb.cluster.stale_events_fenced")),
      degraded_applies(obs::MetricsRegistry::global().counter(
          "sb.cluster.degraded_applies")),
      worker_kills(
          obs::MetricsRegistry::global().counter("sb.cluster.worker_kills")),
      worker_restarts(
          obs::MetricsRegistry::global().counter("sb.cluster.worker_restarts")),
      readoption_latency_s(obs::MetricsRegistry::global().histogram(
          "sb.cluster.readoption_latency_s", readoption_histogram_options())),
      replay_depth(obs::MetricsRegistry::global().histogram(
          "sb.cluster.replay_depth", replay_depth_histogram_options())) {}

ClusterController::ClusterController(Switchboard& controller,
                                     ClusterOptions options)
    : sb_(controller),
      options_(options),
      kv_(options.kv),
      map_(controller.realtime_shard_count(), options.workers, 1),
      workers_(options.workers) {
  require(options_.lease_ttl_s > 0.0, "ClusterController: bad lease TTL");
  // Epoch 1 is the birth epoch, installed with a create-only CAS so a
  // second coordinator against the same store would fail loudly.
  const auto v = kv_.put_if("cluster:epoch", "1", 0);
  require(v.has_value(), "ClusterController: cluster:epoch already exists");
  epoch_version_ = *v;
  // Workers are born alive with a lease from t = 0; the per-event tick
  // re-grants live workers' leases before any expiry sweep, so a sim clock
  // starting hours in never mistakes birth for death.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const WorkerId id(static_cast<std::uint32_t>(w));
    kv_.acquire_lease(lease_key(id), worker_name(id), options_.lease_ttl_s,
                      0.0);
    ++stats_.lease_acquires;
    metrics_.lease_acquires.inc();
  }
}

std::size_t ClusterController::shard_of(CallId call) const {
  return RealtimeSelector::shard_of(call, map_.shard_count());
}

std::uint64_t ClusterController::bump_epoch_locked() {
  const std::uint64_t next = epoch_ + 1;
  const auto v =
      kv_.put_if("cluster:epoch", std::to_string(next), epoch_version_);
  require(v.has_value(),
          "ClusterController: epoch CAS lost (second coordinator?)");
  epoch_version_ = *v;
  epoch_ = next;
  return epoch_;
}

std::size_t ClusterController::replay_shard_locked(std::size_t shard) {
  const auto records = kv_.scan_prefix(wal_shard_prefix(shard));
  for (const auto& [key, value] : records) {
    sb_.adopt_call(call_from_wal_key(key), decode_wal_record(value));
  }
  map_.shard_mut(shard).dirty = false;
  stats_.replayed_records += records.size();
  metrics_.replayed_records.inc(records.size());
  return records.size();
}

WorkerId ClusterController::choose_adopter_locked() const {
  WorkerId best;
  std::size_t best_owned = 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!workers_[w].alive) continue;
    const WorkerId id(static_cast<std::uint32_t>(w));
    const std::size_t owned = map_.shards_owned(id);
    if (!best.valid() || owned < best_owned) {
      best = id;
      best_owned = owned;
    }
  }
  return best;
}

void ClusterController::take_over_orphans_locked(WorkerId adopter, SimTime now,
                                                 bool expedited) {
  std::vector<std::size_t> orphans;
  for (std::size_t s = 0; s < map_.shard_count(); ++s) {
    const ShardOwnership& o = map_.shard(s);
    if (!o.owner.valid() || !workers_[o.owner.value()].alive) {
      orphans.push_back(s);
    }
  }
  if (orphans.empty()) return;

  const std::uint64_t e = bump_epoch_locked();
  obs::Span span("cluster.takeover", obs::Subsystem::kCluster, now);
  span.attr(obs::AttrKey::kWorker,
            static_cast<std::int64_t>(adopter.value()));
  span.attr(obs::AttrKey::kEpoch, static_cast<std::int64_t>(e));

  std::size_t replayed = 0;
  std::vector<bool> latency_done(workers_.size(), false);
  for (const std::size_t s : orphans) {
    ShardOwnership& o = map_.shard_mut(s);
    if (o.owner.valid() && !latency_done[o.owner.value()]) {
      // One latency sample per crashed worker per takeover: time from its
      // kill to the moment a survivor owns (part of) its range again.
      latency_done[o.owner.value()] = true;
      metrics_.readoption_latency_s.record(
          std::max(1e-3, now - workers_[o.owner.value()].killed_at));
    }
    if (o.dirty) replayed += replay_shard_locked(s);
    o.owner = adopter;
    o.epoch = e;
  }
  span.attr(obs::AttrKey::kReplayed, static_cast<std::int64_t>(replayed));
  metrics_.replay_depth.record(static_cast<double>(replayed));
  workers_[adopter.value()].takeovers += orphans.size();
  if (expedited) {
    ++stats_.takeovers_expedited;
    metrics_.takeovers_expedited.inc();
  } else {
    ++stats_.takeovers_ttl;
    metrics_.takeovers_ttl.inc();
  }
}

void ClusterController::tick_locked(SimTime now) {
  // 1. Live workers keep their leases fresh (the in-process stand-in for
  //    background heartbeats): re-grant inside the half-TTL window, and
  //    re-acquire outright after an event gap longer than the TTL.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!workers_[w].alive) continue;
    const WorkerId id(static_cast<std::uint32_t>(w));
    const auto info = kv_.lease(lease_key(id));
    if (info && info->expires_at - now > options_.lease_ttl_s / 2) continue;
    if (kv_.renew_lease(lease_key(id), worker_name(id), options_.lease_ttl_s,
                        now)) {
      ++stats_.lease_renewals;
      metrics_.lease_renewals.inc();
    } else {
      kv_.acquire_lease(lease_key(id), worker_name(id), options_.lease_ttl_s,
                        now);
      ++stats_.lease_acquires;
      metrics_.lease_acquires.inc();
    }
  }
  // 2. Expiry sweep: after step 1 only dead workers' leases can lapse. A
  //    lapse is the TTL crash detector — survivors adopt the whole orphaned
  //    set at once.
  const auto expired = kv_.expire_leases(now);
  if (!expired.empty()) {
    stats_.lease_expiries += expired.size();
    metrics_.lease_expiries.inc(expired.size());
    const WorkerId adopter = choose_adopter_locked();
    if (adopter.valid()) {
      take_over_orphans_locked(adopter, now, /*expedited=*/false);
    }
  }
}

WorkerId ClusterController::route_locked(std::size_t shard, SimTime now) {
  tick_locked(now);
  {
    const ShardOwnership& o = map_.shard(shard);
    if (o.owner.valid() && workers_[o.owner.value()].alive) return o.owner;
  }
  // Orphan touched: the health table's worker row is the crash
  // notification, so adoption is expedited — no waiting out the TTL.
  const WorkerId adopter = choose_adopter_locked();
  if (adopter.valid()) {
    take_over_orphans_locked(adopter, now, /*expedited=*/true);
    return adopter;
  }
  // Degraded direct mode: every worker is dead, so the coordinator applies
  // the event itself. The shard must still be replayed first (its rows were
  // dropped with the dead owner), and ownership is parked as invalid until
  // a worker comes back.
  ShardOwnership& o = map_.shard_mut(shard);
  if (o.owner.valid()) {
    o.owner = WorkerId();
    o.epoch = bump_epoch_locked();
  }
  if (o.dirty) {
    const std::size_t replayed = replay_shard_locked(shard);
    metrics_.replay_depth.record(static_cast<double>(replayed));
  }
  return WorkerId();
}

void ClusterController::write_wal(CallId call, std::size_t shard) {
  const auto snap = sb_.snapshot_call(call);
  if (snap.has_value()) {
    kv_.set(wal_key(shard, call), encode_wal_record(*snap));
  } else {
    kv_.erase(wal_key(shard, call));
  }
  std::lock_guard lock(mutex_);
  ++stats_.wal_writes;
}

void ClusterController::note_apply(WorkerId worker) {
  std::lock_guard lock(mutex_);
  ++stats_.events_applied;
  if (worker.valid()) {
    ++workers_[worker.value()].events_applied;
  } else {
    ++stats_.degraded_applies;
    metrics_.degraded_applies.inc();
  }
}

DcId ClusterController::call_started(CallId call, LocationId first_joiner,
                                     SimTime now) {
  const std::size_t shard = shard_of(call);
  WorkerId worker;
  {
    std::lock_guard lock(mutex_);
    worker = route_locked(shard, now);
  }
  const DcId dc = sb_.call_started(call, first_joiner, now);
  write_wal(call, shard);
  note_apply(worker);
  return dc;
}

FreezeResult ClusterController::config_frozen(CallId call,
                                              const CallConfig& config,
                                              SimTime now) {
  const std::size_t shard = shard_of(call);
  WorkerId worker;
  {
    std::lock_guard lock(mutex_);
    worker = route_locked(shard, now);
  }
  const FreezeResult result = sb_.config_frozen(call, config, now);
  if (!options_.chaos_skip_wal_freeze) write_wal(call, shard);
  note_apply(worker);
  return result;
}

void ClusterController::call_ended(CallId call, SimTime now) {
  const std::size_t shard = shard_of(call);
  WorkerId worker;
  {
    std::lock_guard lock(mutex_);
    worker = route_locked(shard, now);
  }
  sb_.call_ended(call, now);
  write_wal(call, shard);  // row gone -> erases the record
  note_apply(worker);
}

void ClusterController::rewrite_wal_locked(
    const fault::FailoverOutcome& outcome) {
  for (const fault::FailoverMove& m : outcome.moved) {
    const std::size_t shard = shard_of(m.call);
    const auto snap = sb_.snapshot_call(m.call);
    if (snap.has_value()) {
      kv_.set(wal_key(shard, m.call), encode_wal_record(*snap));
      ++stats_.wal_writes;
    }
  }
  for (const CallId c : outcome.dropped) {
    kv_.erase(wal_key(shard_of(c), c));
    ++stats_.wal_writes;
  }
}

fault::FailoverOutcome ClusterController::dc_failed(DcId dc, SimTime now) {
  // Fault hooks run at simulator barriers (no realtime event in flight);
  // the drain itself synchronizes through the Switchboard.
  fault::FailoverOutcome outcome = sb_.dc_failed(dc, now);
  std::lock_guard lock(mutex_);
  rewrite_wal_locked(outcome);
  return outcome;
}

void ClusterController::dc_recovered(DcId dc, SimTime now) {
  sb_.dc_recovered(dc, now);
}

void ClusterController::link_failed(LinkId link, SimTime now) {
  sb_.link_failed(link, now);
}

void ClusterController::link_recovered(LinkId link, SimTime now) {
  sb_.link_recovered(link, now);
}

fault::FailoverOutcome ClusterController::server_failed(ServerId server,
                                                        SimTime now) {
  fault::FailoverOutcome outcome = sb_.server_failed(server, now);
  std::lock_guard lock(mutex_);
  rewrite_wal_locked(outcome);
  return outcome;
}

void ClusterController::server_recovered(ServerId server, SimTime now) {
  sb_.server_recovered(server, now);
}

fault::FailoverOutcome ClusterController::worker_failed(WorkerId worker,
                                                        SimTime now) {
  std::lock_guard lock(mutex_);
  require(worker.valid() && worker.value() < workers_.size(),
          "worker_failed: bad worker id");
  Worker& w = workers_[worker.value()];
  if (!w.alive) return {};  // redundant kill
  obs::Span span("cluster.worker_kill", obs::Subsystem::kCluster, now);
  span.attr(obs::AttrKey::kWorker, static_cast<std::int64_t>(worker.value()));
  w.alive = false;
  w.killed_at = now;
  ++w.kills;
  ++stats_.worker_kills;
  metrics_.worker_kills.inc();
  if (sb_.health().worker_count() > worker.value()) {
    sb_.health_mut().set_worker(worker, false);
  }
  // Controller memory loss: every owned shard's rows vanish WITHOUT any
  // credit — the media plane still hosts those calls, and the WAL is the
  // only way the rows come back. The lease stays in the KV un-renewed (a
  // crashed worker cannot release it); expiry or the health row triggers
  // adoption.
  std::size_t dropped = 0;
  for (const std::size_t s : map_.owned_by(worker)) {
    map_.shard_mut(s).dirty = true;
    dropped += sb_.drop_shards(s, s + 1);
  }
  span.attr(obs::AttrKey::kDropped, static_cast<std::int64_t>(dropped));
  // Empty by design: a worker kill moves and drops nothing on the media
  // plane, so the simulator's usage accounting must not budge.
  return {};
}

void ClusterController::worker_restarted(WorkerId worker, SimTime now) {
  std::lock_guard lock(mutex_);
  require(worker.valid() && worker.value() < workers_.size(),
          "worker_restarted: bad worker id");
  Worker& w = workers_[worker.value()];
  if (w.alive) return;  // redundant restart
  obs::Span span("cluster.worker_restart", obs::Subsystem::kCluster, now);
  span.attr(obs::AttrKey::kWorker, static_cast<std::int64_t>(worker.value()));
  w.alive = true;
  ++w.restarts;
  ++stats_.worker_restarts;
  metrics_.worker_restarts.inc();
  if (sb_.health().worker_count() > worker.value()) {
    sb_.health_mut().set_worker(worker, true);
  }
  kv_.acquire_lease(lease_key(worker), worker_name(worker),
                    options_.lease_ttl_s, now);
  ++stats_.lease_acquires;
  metrics_.lease_acquires.inc();
  // Sticky re-adoption: only shards still orphaned under this worker's
  // name come back; anything a survivor already adopted stays adopted.
  std::vector<std::size_t> mine;
  for (const std::size_t s : map_.owned_by(worker)) {
    if (map_.shard(s).dirty) mine.push_back(s);
  }
  if (mine.empty()) return;
  const std::uint64_t e = bump_epoch_locked();
  span.attr(obs::AttrKey::kEpoch, static_cast<std::int64_t>(e));
  std::size_t replayed = 0;
  for (const std::size_t s : mine) {
    replayed += replay_shard_locked(s);
    map_.shard_mut(s).epoch = e;
  }
  span.attr(obs::AttrKey::kReplayed, static_cast<std::int64_t>(replayed));
  metrics_.replay_depth.record(static_cast<double>(replayed));
  metrics_.readoption_latency_s.record(std::max(1e-3, now - w.killed_at));
}

bool ClusterController::admit(std::size_t shard, WorkerId as_worker,
                              std::uint64_t epoch, SimTime now) {
  std::lock_guard lock(mutex_);
  const ShardOwnership& o = map_.shard(shard);
  bool ok = o.owner == as_worker && o.epoch == epoch;
  if (ok && as_worker.valid()) {
    const Worker& w = workers_[as_worker.value()];
    const auto info = kv_.lease(lease_key(as_worker));
    ok = w.alive && info.has_value() &&
         info->owner == worker_name(as_worker) && info->expires_at > now;
  }
  if (!ok) {
    ++stats_.stale_events_fenced;
    metrics_.stale_events_fenced.inc();
  }
  return ok;
}

std::uint64_t ClusterController::epoch() const {
  std::lock_guard lock(mutex_);
  return epoch_;
}

ClusterStats ClusterController::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::vector<WorkerStatus> ClusterController::worker_table() const {
  std::lock_guard lock(mutex_);
  std::vector<WorkerStatus> table;
  table.reserve(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const WorkerId id(static_cast<std::uint32_t>(w));
    const auto [begin, end] = map_.initial_range(id);
    table.push_back(WorkerStatus{id, workers_[w].alive, map_.shards_owned(id),
                                 begin, end, workers_[w].events_applied,
                                 workers_[w].takeovers, workers_[w].kills,
                                 workers_[w].restarts});
  }
  return table;
}

std::size_t ClusterController::wal_size() const {
  return kv_.scan_prefix("wal:").size();
}

}  // namespace sb::cluster
