// Capacity planner: the workload a platform/capacity team would run every
// few months (§2.1's MP capacity provisioning). Takes the canonical APAC
// scenario, compares Round-Robin, Locality-First, and Switchboard, and
// prints a per-DC / per-link provisioning sheet for the Switchboard plan.
//
// Flags: --slot_s=7200 --configs=20 --rate_scale=1
#include <iostream>

#include "baselines/locality_first.h"
#include "baselines/round_robin.h"
#include "common/table.h"
#include "trace/scenario.h"
#include "core/provisioner.h"

namespace {

// Minimal local flag parsing (the bench utilities are not part of the
// installed library surface, so examples stay self-contained).
double flag(int argc, char** argv, const std::string& name, double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtod(arg.c_str() + prefix.size(), nullptr);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sb;
  const double slot_s = flag(argc, argv, "slot_s", 7200.0);
  const auto configs = static_cast<std::size_t>(flag(argc, argv, "configs", 20));
  const double rate_scale = flag(argc, argv, "rate_scale", 1.0);

  Scenario scenario = make_apac_scenario({.rate_scale = rate_scale});
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};
  const World& world = scenario.world();
  const Topology& topo = scenario.topology();

  // Expected demand for a representative weekday, top-K configs.
  DemandMatrix full = scenario.trace->expected_demand(
      slot_s, kSecondsPerDay, 2 * kSecondsPerDay);
  std::vector<ConfigId> top;
  for (std::size_t i = 0; i < std::min(configs, full.config_count()); ++i) {
    top.push_back(full.config_at(i));
  }
  DemandMatrix demand = make_demand_matrix(top, full.slot_count());
  for (TimeSlot t = 0; t < full.slot_count(); ++t) {
    for (std::size_t c = 0; c < top.size(); ++c) {
      demand.set_demand(t, c, full.demand(t, c));
    }
  }

  std::cout << "Capacity planning for the APAC region ("
            << world.dc_count() << " DCs, " << topo.link_count()
            << " WAN links, top-" << top.size() << " call configs)\n\n";

  const BaselineResult rr = provision_round_robin(demand, ctx);
  const BaselineResult lf = provision_locality_first(demand, ctx);
  SwitchboardProvisioner provisioner(ctx, {});
  const ProvisionResult sb = provisioner.provision(demand);

  TextTable compare({"Scheme", "Cores", "WAN Gbps", "Cost", "Mean ACL ms"});
  compare.row()
      .cell("Round-Robin")
      .cell(rr.capacity.total_cores(), 1)
      .cell(rr.capacity.total_wan_gbps(), 3)
      .cell(rr.capacity.total_cost(world, topo), 1)
      .cell(rr.mean_acl_ms, 1);
  compare.row()
      .cell("Locality-First")
      .cell(lf.capacity.total_cores(), 1)
      .cell(lf.capacity.total_wan_gbps(), 3)
      .cell(lf.capacity.total_cost(world, topo), 1)
      .cell(lf.mean_acl_ms, 1);
  compare.row()
      .cell("Switchboard")
      .cell(sb.capacity.total_cores(), 1)
      .cell(sb.capacity.total_wan_gbps(), 3)
      .cell(sb.capacity.total_cost(world, topo), 1)
      .cell(sb.mean_acl_ms, 1);
  std::cout << compare;

  print_banner(std::cout, "Switchboard provisioning sheet");
  TextTable dcs({"DC", "serving cores", "backup cores", "total", "core cost"});
  for (DcId dc : world.dc_ids()) {
    dcs.row()
        .cell(world.datacenter(dc).name)
        .cell(sb.capacity.dc_serving_cores[dc.value()], 1)
        .cell(sb.capacity.dc_backup_cores[dc.value()], 1)
        .cell(sb.capacity.dc_total_cores(dc), 1)
        .cell(world.datacenter(dc).core_cost, 2);
  }
  std::cout << dcs << "\n";

  TextTable links({"Link", "endpoints", "Gbps", "cost/Gbps"});
  for (LinkId l : topo.link_ids()) {
    const WanLink& link = topo.link(l);
    if (sb.capacity.link_gbps[l.value()] < 1e-6) continue;
    links.row()
        .cell(link.name)
        .cell(world.location(link.a).name + "-" + world.location(link.b).name)
        .cell(sb.capacity.link_gbps[l.value()], 3)
        .cell(link.cost_per_gbps, 1);
  }
  std::cout << links;

  std::cout << "\nworst-case failure scenarios per resource are folded in "
               "(any single DC or WAN link may fail, §5.3)\n";
  return 0;
}
