// RAII wall-clock span: records the elapsed time of a pipeline stage into a
// histogram (in seconds) when it goes out of scope. With SB_METRICS=OFF the
// timer is an empty stub that never touches the clock.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace sb::obs {

#ifdef SB_METRICS_ENABLED

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now (idempotent) and returns the elapsed seconds.
  double stop() {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    if (histogram_ != nullptr) {
      histogram_->record(elapsed);
      histogram_ = nullptr;
    }
    return elapsed;
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

#else

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) {}
  double stop() { return 0.0; }
};

#endif  // SB_METRICS_ENABLED

}  // namespace sb::obs
