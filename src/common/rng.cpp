#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"

namespace sb {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  require(n > 0, "uniform_index: n must be positive");
  // Lemire's rejection method for unbiased bounded integers.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "uniform_int: lo must be <= hi");
  return lo + static_cast<std::int64_t>(
                  uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  require(rate > 0, "exponential: rate must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::poisson(double mean) {
  require(mean >= 0, "poisson: mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for workload
  // synthesis where the mean is large.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  require(!weights.empty(), "weighted_index: weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "weighted_index: weights must be non-negative");
    total += w;
  }
  require(total > 0.0, "weighted_index: weight sum must be positive");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fall into the final bucket
}

Rng Rng::fork() { return Rng((*this)()); }

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  require(n > 0, "ZipfSampler: n must be positive");
  // Exponent 0 is the degenerate uniform pmf (1/k^0 == 1): useful for
  // stress-testing equal-rate tie handling downstream.
  require(exponent >= 0, "ZipfSampler: exponent must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfSampler::pmf(std::size_t k) const {
  require(k < cdf_.size(), "ZipfSampler::pmf: rank out of range");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace sb
