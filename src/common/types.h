// Strong identifier and time types shared across all Switchboard modules.
//
// Every entity in the system (datacenter, location, WAN link, call config,
// call) is addressed by a dense 32-bit index into a registry owned by the
// module that defines the entity. Raw integers are easy to mix up, so each
// index is wrapped in a distinct StrongId instantiation; conversion to the
// underlying integer is explicit via value().
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace sb {

/// A type-safe wrapper around a dense 32-bit index.
///
/// @tparam Tag an empty struct that makes each instantiation a distinct type.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;

  /// Sentinel for "no id"; default construction yields an invalid id so that
  /// accidentally unset ids are caught by valid() checks rather than aliasing
  /// entity 0.
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  underlying_type value_ = kInvalid;
};

struct DcTag {};
struct LocationTag {};
struct LinkTag {};
struct ConfigTag {};
struct CallTag {};
struct ServerTag {};
struct WorkerTag {};

/// Datacenter index within a World.
using DcId = StrongId<DcTag>;
/// Media-server index within a World's fleet (global, not per-DC).
using ServerId = StrongId<ServerTag>;
/// Controller-worker index within an sb_cluster deployment.
using WorkerId = StrongId<WorkerTag>;
/// Participant location (country) index within a World.
using LocationId = StrongId<LocationTag>;
/// WAN link index within a Topology.
using LinkId = StrongId<LinkTag>;
/// Interned call-configuration index within a CallConfigRegistry.
using ConfigId = StrongId<ConfigTag>;
/// Call index within a trace / call-record database.
using CallId = StrongId<CallTag>;

/// Index of a provisioning time slot (e.g. a 30-minute bucket).
using TimeSlot = std::uint32_t;

/// Seconds since the start of a trace. Double so that sub-second simulator
/// events (KV-store latencies, join jitter) need no unit juggling.
using SimTime = double;

}  // namespace sb

namespace std {
template <typename Tag>
struct hash<sb::StrongId<Tag>> {
  size_t operator()(sb::StrongId<Tag> id) const noexcept {
    return std::hash<typename sb::StrongId<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std
