#include "sim/allocator.h"

#include "baselines/baseline.h"
#include "common/error.h"

namespace sb {

RoundRobinAllocator::RoundRobinAllocator(EvalContext ctx) : ctx_(ctx) {
  require(ctx_.world && ctx_.latency && ctx_.registry,
          "RoundRobinAllocator: incomplete context");
  std::unordered_map<std::string, std::size_t> region_index;
  const std::size_t locations = ctx_.world->location_count();
  location_region_.resize(locations);
  for (std::size_t i = 0; i < locations; ++i) {
    const std::string& region =
        ctx_.world->location(LocationId(static_cast<std::uint32_t>(i))).region;
    const auto [it, inserted] =
        region_index.emplace(region, region_dcs_.size());
    if (inserted) {
      std::vector<DcId> dcs = ctx_.world->dcs_in_region(region);
      if (dcs.empty()) dcs = ctx_.world->dc_ids();
      region_dcs_.push_back(std::move(dcs));
    }
    location_region_[i] = it->second;
  }
  region_cursor_.assign(region_dcs_.size(), 0);
}

DcId RoundRobinAllocator::on_call_start(CallId call, LocationId first_joiner,
                                        SimTime /*now*/) {
  const std::size_t region = location_region_[first_joiner.value()];
  const std::vector<DcId>& dcs = region_dcs_[region];
  std::size_t& cursor = region_cursor_[region];
  const DcId dc = dcs[cursor % dcs.size()];
  ++cursor;
  active_[call] = dc;
  return dc;
}

FreezeResult RoundRobinAllocator::on_config_frozen(CallId call,
                                                   const CallConfig& /*config*/,
                                                   SimTime /*now*/) {
  const auto it = active_.find(call);
  require(it != active_.end(), "RoundRobinAllocator: unknown call");
  return FreezeResult{it->second, false, false};
}

void RoundRobinAllocator::on_call_end(CallId call, SimTime /*now*/) {
  active_.erase(call);
}

LocalityFirstAllocator::LocalityFirstAllocator(EvalContext ctx) : ctx_(ctx) {
  require(ctx_.world && ctx_.latency && ctx_.registry,
          "LocalityFirstAllocator: incomplete context");
  all_dcs_ = ctx_.world->dc_ids();
}

DcId LocalityFirstAllocator::on_call_start(CallId call,
                                           LocationId first_joiner,
                                           SimTime /*now*/) {
  const DcId dc = ctx_.latency->closest_dc(first_joiner, all_dcs_);
  active_[call] = dc;
  return dc;
}

FreezeResult LocalityFirstAllocator::on_config_frozen(CallId call,
                                                      const CallConfig& config,
                                                      SimTime /*now*/) {
  const auto it = active_.find(call);
  require(it != active_.end(), "LocalityFirstAllocator: unknown call");
  const std::vector<DcId> candidates =
      region_candidates(config, *ctx_.world);
  const DcId target = min_acl_dc(config, candidates, *ctx_.latency);
  FreezeResult result{target, target != it->second, false};
  if (result.migrated) {
    ++migrations_;
    it->second = target;
  }
  return result;
}

void LocalityFirstAllocator::on_call_end(CallId call, SimTime /*now*/) {
  active_.erase(call);
}

}  // namespace sb
