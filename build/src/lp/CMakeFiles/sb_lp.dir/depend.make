# Empty dependencies file for sb_lp.
# This may be replaced when dependencies are built.
