
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/config_sampler.cpp" "src/trace/CMakeFiles/sb_trace.dir/config_sampler.cpp.o" "gcc" "src/trace/CMakeFiles/sb_trace.dir/config_sampler.cpp.o.d"
  "/root/repo/src/trace/diurnal.cpp" "src/trace/CMakeFiles/sb_trace.dir/diurnal.cpp.o" "gcc" "src/trace/CMakeFiles/sb_trace.dir/diurnal.cpp.o.d"
  "/root/repo/src/trace/scenario.cpp" "src/trace/CMakeFiles/sb_trace.dir/scenario.cpp.o" "gcc" "src/trace/CMakeFiles/sb_trace.dir/scenario.cpp.o.d"
  "/root/repo/src/trace/trace_gen.cpp" "src/trace/CMakeFiles/sb_trace.dir/trace_gen.cpp.o" "gcc" "src/trace/CMakeFiles/sb_trace.dir/trace_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sb_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/calls/CMakeFiles/sb_calls.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
