#include "common/thread_pool.h"

#include <algorithm>

namespace sb {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace sb
