#include "forecast/forecaster.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace sb {

std::vector<double> forecast_calls(std::span<const double> history,
                                   std::size_t season_length,
                                   std::size_t horizon) {
  require(!history.empty(), "forecast_calls: empty history");
  require(season_length >= 1, "forecast_calls: season length");
  // Holt-Winters needs two full seasons to initialize level/trend/seasonal.
  // Shorter histories (a season longer than the data, or exactly one season
  // — both occur under fuzzed traces) fall back to a flat mean forecast
  // rather than throwing: a config with too little history is forecast as
  // "more of the same".
  if (history.size() < 2 * season_length) {
    double mean = 0.0;
    for (double v : history) mean += v;
    mean = std::max(0.0, mean / static_cast<double>(history.size()));
    return std::vector<double>(horizon, mean);
  }
  HoltWinters model = HoltWinters::fit(history, season_length);
  std::vector<double> forecast = model.forecast(horizon);
  for (double& v : forecast) {
    v = std::isfinite(v) ? std::max(0.0, v) : 0.0;
  }
  return forecast;
}

NormalizedErrors normalized_errors(std::span<const double> truth,
                                   std::span<const double> forecast) {
  require(truth.size() == forecast.size() && !truth.empty(),
          "normalized_errors: size mismatch or empty");
  double peak = 0.0;
  for (double v : truth) peak = std::max(peak, v);
  NormalizedErrors errors;
  if (peak == 0.0) {
    // Degenerate config with no calls in the truth window: report the raw
    // forecast magnitude so a non-zero forecast still counts as error.
    errors.rmse = rmse(truth, forecast);
    errors.mae = mae(truth, forecast);
    return errors;
  }
  errors.rmse = rmse(truth, forecast) / peak;
  errors.mae = mae(truth, forecast) / peak;
  return errors;
}

double estimate_cushion(std::span<const double> truth,
                        std::span<const double> forecast,
                        double max_cushion, double ratio_quantile) {
  require(truth.size() == forecast.size() && !truth.empty(),
          "estimate_cushion: size mismatch or empty");
  require(max_cushion >= 1.0, "estimate_cushion: max_cushion < 1");
  require(ratio_quantile > 0.0 && ratio_quantile <= 1.0,
          "estimate_cushion: quantile out of range");
  double truth_peak = 0.0;
  for (double v : truth) truth_peak = std::max(truth_peak, v);
  if (truth_peak == 0.0) return 1.0;

  std::vector<double> ratios;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    // Only buckets carrying meaningful demand say anything about
    // under-forecasting; near-empty buckets produce wild ratios.
    if (truth[i] < 0.05 * truth_peak) continue;
    ratios.push_back(truth[i] / std::max(forecast[i], 1e-9));
  }
  if (ratios.empty()) return 1.0;
  const double q = quantile(ratios, ratio_quantile);
  return std::clamp(q, 1.0, max_cushion);
}

DemandMatrix demand_from_arrivals(
    const std::vector<std::vector<double>>& arrivals,
    const std::vector<ConfigId>& configs, double bucket_s,
    double mean_duration_s, double cushion) {
  require(arrivals.size() == configs.size() && !arrivals.empty(),
          "demand_from_arrivals: shape mismatch");
  require(bucket_s > 0.0 && mean_duration_s > 0.0,
          "demand_from_arrivals: widths must be positive");
  require(cushion >= 1.0, "demand_from_arrivals: cushion < 1");
  const std::size_t slots = arrivals.front().size();
  for (const auto& series : arrivals) {
    require(series.size() == slots, "demand_from_arrivals: ragged series");
  }
  DemandMatrix demand = make_demand_matrix(configs, slots);
  for (std::size_t c = 0; c < arrivals.size(); ++c) {
    for (std::size_t t = 0; t < slots; ++t) {
      const double concurrency =
          arrivals[c][t] / bucket_s * mean_duration_s * cushion;
      demand.set_demand(static_cast<TimeSlot>(t), c, std::max(0.0, concurrency));
    }
  }
  return demand;
}

}  // namespace sb
