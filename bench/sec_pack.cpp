// Server packing (the intra-DC layer beneath the DC selector): replay the
// same APAC trace window twice — once against the classic fungible per-DC
// core pool, once against a packed media-server fleet sized from the
// fungible run's realized per-DC peaks, with one deliberately undersized
// straggler server per DC (the heterogeneity that makes bin packing
// non-trivial). Mid-window the first DC's straggler fails, exercising the
// drain_server tier ladder. The claims under test:
//  - DC-level outcomes are unchanged: same calls, same drops, same mean ACL
//    (packing nests *beneath* DC selection; it never overrides it);
//  - the straggler's realized peak stays at its (small) capacity while its
//    siblings absorb the rest — best-fit admits respect per-server bounds,
//    with overcommit only as fail-open (counted);
//  - at quiescence every server's occupancy returns to zero exactly.
// A final defragmentation showcase freezes a batch of calls, ends
// alternating ones to shred the free space, and runs defragment_dc — the
// pack.repack spans land in --trace-out for Perfetto.
//
// Flags: --servers=4 --straggler=0.25 --headroom=1.15 --window_h=4
//        --rate_scale=1.0 --outage_min=30 --trace-out=trace.json
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/realtime.h"
#include "fault/fault_schedule.h"
#include "fault/health_table.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "pack/packer.h"
#include "sim/allocator.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace sb;
  const std::size_t servers = bench::arg_size(argc, argv, "servers", 4);
  const double straggler = bench::arg_double(argc, argv, "straggler", 0.25);
  const double headroom = bench::arg_double(argc, argv, "headroom", 1.15);
  const double window_s =
      bench::arg_double(argc, argv, "window_h", 4.0) * kSecondsPerHour;
  const double rate_scale = bench::arg_double(argc, argv, "rate_scale", 1.0);
  const double outage_s =
      bench::arg_double(argc, argv, "outage_min", 30.0) * 60.0;
  const std::string trace_out = bench::arg_string(argc, argv, "trace-out", "");
  obs::SpanRecorder::global().set_enabled(!trace_out.empty());

  ScenarioParams sp;
  sp.rate_scale = rate_scale;
  Scenario scenario = make_apac_scenario(sp);
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};
  const std::size_t dc_count = scenario.world().dc_count();
  const std::size_t link_count = scenario.topology().links().size();

  // A weekday daytime window (the plan day starts at kSecondsPerDay).
  const double t0 = kSecondsPerDay + 9.0 * kSecondsPerHour;
  const double t1 = t0 + window_s;
  const CallRecordDatabase db = scenario.trace->generate(t0, t1);

  // --- Fungible baseline: the pre-fleet world, plan-less selector. Must
  // run before any server is registered (the world is mutated below).
  Simulator sim(ctx);
  RealtimeSelector fungible_selector(ctx, nullptr, {});
  SwitchboardAllocator fungible_alloc(fungible_selector);
  const SimReport fungible = sim.run(db, fungible_alloc, 300.0);

  // --- Fleet: size each DC's servers from the fungible run's realized
  // peak (headroom on top), one straggler getting `straggler` of an equal
  // share — small enough that big calls cannot land there.
  for (std::size_t x = 0; x < dc_count; ++x) {
    const DcId dc(static_cast<std::uint32_t>(x));
    const double peak = std::max(fungible.dc_peak_cores[x], 1.0);
    const double total = peak * headroom;
    const double equal = total / static_cast<double>(servers);
    const double small = equal * straggler;
    const double big = servers > 1
                           ? (total - small) / static_cast<double>(servers - 1)
                           : small;
    for (std::size_t s = 0; s < servers; ++s) {
      scenario.geo->world.add_server(
          {scenario.world().datacenter(dc).name + "-ms" + std::to_string(s),
           dc, s == 0 ? small : big});
    }
  }
  const std::size_t server_count = scenario.world().server_count();

  // --- Packed run: same trace, same DC-level policy, fleet beneath it.
  // The first DC's straggler fails mid-window (drain_server tier ladder).
  fault::HealthTable health(dc_count, link_count, server_count);
  RealtimeSelector packed_selector(ctx, nullptr, {}, 0.0, &health);
  SwitchboardAllocator packed_alloc(packed_selector, &health);
  fault::FaultSchedule faults;
  faults.fail_server(ServerId(0), t0 + window_s / 2.0, outage_s);
  const SimReport packed = sim.run(db, packed_alloc, 300.0, &faults);

  std::cout << "server packing: " << db.size() << " calls over "
            << window_s / kSecondsPerHour << " h, " << servers
            << " servers/DC (straggler x" << straggler << "), straggler of "
            << scenario.world().datacenter(DcId(0)).name
            << " down mid-window\n\n";

  TextTable dc_table({"DC", "fungible peak", "fleet cores", "straggler cap",
                      "straggler peak", "max server peak"});
  for (std::size_t x = 0; x < dc_count; ++x) {
    const DcId dc(static_cast<std::uint32_t>(x));
    double fleet_cores = 0.0;
    double straggler_cap = 0.0;
    double straggler_peak = 0.0;
    double max_peak = 0.0;
    bool first = true;
    for (const ServerId s : scenario.world().servers_in_dc(dc)) {
      fleet_cores += scenario.world().server(s).cores;
      max_peak = std::max(max_peak, packed.server_peak_cores[s.value()]);
      if (first) {
        straggler_cap = scenario.world().server(s).cores;
        straggler_peak = packed.server_peak_cores[s.value()];
        first = false;
      }
    }
    dc_table.row()
        .cell(scenario.world().datacenter(dc).name)
        .cell(fungible.dc_peak_cores[x], 1)
        .cell(fleet_cores, 1)
        .cell(straggler_cap, 2)
        .cell(straggler_peak, 2)
        .cell(max_peak, 1);
  }
  std::cout << dc_table << "\n";

  TextTable run_table({"scheme", "calls", "dropped", "moved", "mean ACL ms",
                       "overcommit admits"});
  run_table.row()
      .cell("fungible")
      .cell(fungible.calls)
      .cell(fungible.dropped_calls)
      .cell(fungible.failover_migrations)
      .cell(fungible.mean_acl_ms, 2)
      .cell(std::uint64_t{0});
  const std::uint64_t overcommit =
      packed_selector.packer()->overcommit_admits();
  run_table.row()
      .cell("packed")
      .cell(packed.calls)
      .cell(packed.dropped_calls)
      .cell(packed.failover_migrations)
      .cell(packed.mean_acl_ms, 2)
      .cell(overcommit);
  std::cout << run_table << "\n";

  // Quiescence: the packer's cumulative counters must balance exactly.
  std::int64_t leaked_mc = 0;
  std::uint64_t admits = 0;
  std::uint64_t releases = 0;
  for (const pack::ServerStats& s : packed_selector.packer()->stats()) {
    leaked_mc += s.admitted_mc - s.released_mc;
    admits += s.admits;
    releases += s.releases;
  }
  std::cout << "sb.pack.admits=" << admits << " sb.pack.releases=" << releases
            << " leaked_mc=" << leaked_mc << "\n\n";

  // --- Defragmentation showcase: freeze a batch at one instant, end
  // alternating calls to shred the free space, then consolidate.
  fault::HealthTable defrag_health(dc_count, link_count, server_count);
  RealtimeSelector defrag_selector(ctx, nullptr, {}, 0.0, &defrag_health);
  const std::size_t batch = std::min<std::size_t>(db.size(), 400);
  for (std::size_t i = 0; i < batch; ++i) {
    const CallRecord& rec = db.records()[i];
    defrag_selector.on_call_start(rec.id, rec.legs.front().location, 0.0);
    defrag_selector.on_config_frozen(rec.id,
                                     scenario.registry->get(rec.config), 300.0);
  }
  for (std::size_t i = 0; i < batch; i += 2) {
    defrag_selector.on_call_end(db.records()[i].id, 400.0);
  }
  double frag_gain = 0.0;
  std::size_t defrag_moves = 0;
  TextTable defrag_table({"DC", "repack moves", "frag before", "frag after"});
  for (std::size_t x = 0; x < dc_count; ++x) {
    const DcId dc(static_cast<std::uint32_t>(x));
    const pack::DefragResult r = defrag_selector.defragment_dc(dc);
    defrag_table.row()
        .cell(scenario.world().datacenter(dc).name)
        .cell(static_cast<std::uint64_t>(r.moves.size()))
        .cell(r.fragmentation_before, 3)
        .cell(r.fragmentation_after, 3);
    frag_gain =
        std::max(frag_gain, r.fragmentation_before - r.fragmentation_after);
    defrag_moves += r.moves.size();
  }
  std::cout << defrag_table << "\n";

  bench::emit_json("sec_pack", "fungible.dropped_calls",
                   static_cast<double>(fungible.dropped_calls));
  bench::emit_json("sec_pack", "packed.dropped_calls",
                   static_cast<double>(packed.dropped_calls));
  bench::emit_json("sec_pack", "packed.failover_moves",
                   static_cast<double>(packed.failover_migrations));
  bench::emit_json("sec_pack", "acl_delta_ms",
                   packed.mean_acl_ms - fungible.mean_acl_ms);
  bench::emit_json("sec_pack", "packed.overcommit_admits",
                   static_cast<double>(overcommit));
  bench::emit_json("sec_pack", "packed.leaked_mc",
                   static_cast<double>(leaked_mc));
  double worst_straggler_ratio = 0.0;
  for (std::size_t x = 0; x < dc_count; ++x) {
    const ServerId s =
        scenario.world().servers_in_dc(DcId(static_cast<std::uint32_t>(x)))
            .front();
    worst_straggler_ratio = std::max(
        worst_straggler_ratio, packed.server_peak_cores[s.value()] /
                                   std::max(scenario.world().server(s).cores,
                                            1e-9));
  }
  bench::emit_json("sec_pack", "straggler_peak_over_capacity",
                   worst_straggler_ratio);
  bench::emit_json("sec_pack", "defrag.moves",
                   static_cast<double>(defrag_moves));
  bench::emit_json("sec_pack", "defrag.best_frag_gain", frag_gain);

  if (!trace_out.empty() && obs::dump_chrome_trace(trace_out)) {
    std::cout << "trace written to " << trace_out << "\n";
  }
  return 0;
}
