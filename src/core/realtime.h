// The realtime MP selector (§5.4): assigns a DC the moment a call's first
// participant joins (closest DC to the first joiner), then reconciles with
// the precomputed allocation plan once the call config freezes A minutes in
// — debiting a plan slot, or migrating the call when the initial choice
// disagrees with the plan. Unplanned configs fall back to their closest DC.
//
// Concurrency (DESIGN.md "Threading model"): call state is lock-striped
// across N shards keyed by CallId % N, so events for different calls on
// different shards never contend. Plan-slot quotas live outside the shards
// in one shared table of atomic counters debited/credited with CAS, which
// keeps freeze/migrate/overflow accounting exact without any global lock.
// Stats are per-shard atomics folded on read. Driven single-threaded, the
// selector makes bit-identical decisions to the pre-sharded implementation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/allocation_plan.h"

namespace sb {

struct RealtimeOptions {
  /// §6.4: the config freezes A = 300 s after call start (~80% of
  /// participants have joined by then, Fig 8).
  double freeze_delay_s = 300.0;
  double acl_threshold_ms = kDefaultAclThresholdMs;
  /// Lock stripes over the call table (shard = CallId % shard_count).
  /// Events for calls on different shards proceed concurrently.
  std::size_t shard_count = 16;
};

/// Outcome of freezing one call's config.
struct FreezeResult {
  DcId dc;                ///< final hosting DC
  bool migrated = false;  ///< true if the call moved to a different DC
  bool planned = false;   ///< true if the config had plan slots
};

/// Thread-safe selector state machine: any number of call-signaling threads
/// may invoke the three event methods concurrently. Tracks per-(config, DC)
/// active frozen calls against the plan's slot quotas.
class RealtimeSelector {
 public:
  /// `plan` may be null (no-plan operation: every call sticks to the
  /// closest-DC heuristic and freezing only re-homes unplanned configs).
  RealtimeSelector(EvalContext ctx, const AllocationPlan* plan,
                   RealtimeOptions options, SimTime plan_start_s = 0.0);

  /// (a) of §5.4: a new call starts; returns the initial DC — the one
  /// closest (lowest latency) to the first joiner's location.
  DcId on_call_start(CallId call, LocationId first_joiner, SimTime now);

  /// (b)/(c) of §5.4: the call's config is now known. Debits a plan slot at
  /// the current DC if available, otherwise migrates to the planned DC with
  /// spare quota and the lowest ACL. Unplanned configs go to the min-ACL DC.
  FreezeResult on_config_frozen(CallId call, const CallConfig& config,
                                SimTime now);

  /// Releases the call's slot (if it held one).
  void on_call_end(CallId call, SimTime now);

  struct Stats {
    std::uint64_t calls_started = 0;
    std::uint64_t calls_frozen = 0;
    std::uint64_t migrations = 0;    ///< §6.4's headline metric
    std::uint64_t unplanned = 0;     ///< configs with no plan column
    std::uint64_t overflow = 0;      ///< plan slots exhausted; call stayed put
    std::uint64_t slot_debits = 0;   ///< plan slots acquired at freeze
    std::uint64_t slot_credits = 0;  ///< plan slots released at call end
  };
  /// Folds the per-shard stat atomics; weakly consistent under concurrent
  /// events, exact when the selector is quiescent.
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t active_calls() const;
  /// Plan slots currently held (sum over the atomic usage table); always
  /// equals slot_debits - slot_credits when quiescent.
  [[nodiscard]] std::uint64_t held_slots() const;
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  /// The stripe a call's state lives on; the simulator's concurrent driver
  /// uses the same function to give each call thread affinity.
  [[nodiscard]] static std::size_t shard_of(CallId call, std::size_t shards) {
    return call.value() % shards;
  }
  [[nodiscard]] double freeze_delay_s() const {
    return options_.freeze_delay_s;
  }

 private:
  struct ActiveCall {
    DcId dc;
    std::size_t plan_col = AllocationPlan::npos;
    bool holds_slot = false;
  };

  /// One lock stripe: its own mutex and call table, padded so neighbouring
  /// shards' locks never share a cache line.
  struct alignas(64) CallShard {
    mutable std::mutex mutex;
    std::unordered_map<CallId, ActiveCall> calls;
  };

  /// Per-shard event counters; incremented with relaxed atomics from inside
  /// that shard's critical section, folded on read.
  struct alignas(64) ShardStats {
    std::atomic<std::uint64_t> calls_started{0};
    std::atomic<std::uint64_t> calls_frozen{0};
    std::atomic<std::uint64_t> migrations{0};
    std::atomic<std::uint64_t> unplanned{0};
    std::atomic<std::uint64_t> overflow{0};
    std::atomic<std::uint64_t> slot_debits{0};
    std::atomic<std::uint64_t> slot_credits{0};
  };

  [[nodiscard]] CallShard& shard(CallId call) {
    return shards_[shard_of(call, shard_count_)];
  }
  [[nodiscard]] ShardStats& shard_stats(CallId call) {
    return stats_[shard_of(call, shard_count_)];
  }
  [[nodiscard]] std::atomic<std::uint32_t>& usage(std::size_t col, DcId dc) {
    return usage_[col * plan_->dc_count() + dc.value()];
  }
  /// CAS loop: acquires one slot of (col, dc) iff usage < quota. Exact under
  /// contention — never debits past the quota, never loses a debit.
  bool try_debit(std::size_t col, DcId dc, std::uint32_t quota);

  EvalContext ctx_;
  const AllocationPlan* plan_;
  RealtimeOptions options_;
  SimTime plan_start_s_;
  std::size_t shard_count_;
  std::vector<DcId> all_dcs_;
  std::unique_ptr<CallShard[]> shards_;
  std::unique_ptr<ShardStats[]> stats_;
  /// [plan col][dc] active frozen calls, shared across shards.
  std::unique_ptr<std::atomic<std::uint32_t>[]> usage_;
};

}  // namespace sb
