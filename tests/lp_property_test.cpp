// Property tests for the LP solvers: on randomized feasible instances, the
// dense tableau, the legacy revised simplex, and the sparse LU/eta engine
// must agree on the optimal objective and every answer must pass the
// independent feasibility validator.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/solver.h"

namespace sb::lp {
namespace {

struct RandomLpSpec {
  std::uint64_t seed;
  std::size_t vars;
  std::size_t rows;
};

/// Builds a random LP that is feasible by construction: draw a non-negative
/// witness x0, then set each row's rhs from A x0 (loosened for inequalities
/// in the satisfied direction). Costs are non-negative, so with x >= 0 the
/// problem is also bounded.
Model make_random_feasible_lp(const RandomLpSpec& spec) {
  Rng rng(spec.seed);
  Model m;
  std::vector<double> witness(spec.vars);
  for (std::size_t i = 0; i < spec.vars; ++i) {
    witness[i] = rng.uniform(0.0, 10.0);
    m.add_variable(0.0, kInf, rng.uniform(0.0, 5.0));
  }
  for (std::size_t r = 0; r < spec.rows; ++r) {
    std::vector<Term> terms;
    double lhs = 0.0;
    for (std::size_t i = 0; i < spec.vars; ++i) {
      if (!rng.chance(0.4)) continue;
      const double coeff = rng.uniform(-3.0, 3.0);
      terms.push_back({static_cast<int>(i), coeff});
      lhs += coeff * witness[i];
    }
    if (terms.empty()) continue;
    const double pick = rng.uniform();
    if (pick < 0.4) {
      m.add_constraint(std::move(terms), Sense::kLe, lhs + rng.uniform(0.0, 4.0));
    } else if (pick < 0.8) {
      m.add_constraint(std::move(terms), Sense::kGe, lhs - rng.uniform(0.0, 4.0));
    } else {
      m.add_constraint(std::move(terms), Sense::kEq, lhs);
    }
  }
  return m;
}

class RandomLpAgreementTest
    : public ::testing::TestWithParam<RandomLpSpec> {};

TEST_P(RandomLpAgreementTest, DenseAndRevisedAgreeAndValidate) {
  const Model m = make_random_feasible_lp(GetParam());

  SolveOptions dense_opt;
  dense_opt.method = Method::kDense;
  SolveOptions revised_opt;
  revised_opt.method = Method::kRevised;
  SolveOptions sparse_opt;
  sparse_opt.method = Method::kSparse;

  const Solution dense = solve(m, dense_opt);
  const Solution revised = solve(m, revised_opt);
  const Solution sparse = solve(m, sparse_opt);

  ASSERT_EQ(dense.status, SolveStatus::kOptimal);
  ASSERT_EQ(revised.status, SolveStatus::kOptimal);
  ASSERT_EQ(sparse.status, SolveStatus::kOptimal);

  const double scale = std::max({1.0, std::abs(dense.objective)});
  EXPECT_NEAR(dense.objective, revised.objective, 1e-5 * scale)
      << "seed=" << GetParam().seed;
  EXPECT_NEAR(dense.objective, sparse.objective, 1e-5 * scale)
      << "seed=" << GetParam().seed;

  const ValidationReport dr = validate_solution(m, dense.values, 1e-5);
  EXPECT_TRUE(dr.feasible) << "dense violated " << dr.worst << " by "
                           << dr.max_violation;
  const ValidationReport rr = validate_solution(m, revised.values, 1e-5);
  EXPECT_TRUE(rr.feasible) << "revised violated " << rr.worst << " by "
                           << rr.max_violation;
  const ValidationReport sr = validate_solution(m, sparse.values, 1e-5);
  EXPECT_TRUE(sr.feasible) << "sparse violated " << sr.worst << " by "
                           << sr.max_violation;
}

std::vector<RandomLpSpec> make_specs() {
  std::vector<RandomLpSpec> specs;
  std::uint64_t seed = 1000;
  for (std::size_t vars : {3u, 8u, 20u}) {
    for (std::size_t rows : {2u, 6u, 15u, 30u}) {
      for (int rep = 0; rep < 4; ++rep) {
        specs.push_back({seed++, vars, rows});
      }
    }
  }
  return specs;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLpAgreementTest,
                         ::testing::ValuesIn(make_specs()),
                         [](const auto& info) {
                           const RandomLpSpec& s = info.param;
                           return "seed" + std::to_string(s.seed) + "_v" +
                                  std::to_string(s.vars) + "_r" +
                                  std::to_string(s.rows);
                         });

/// Infeasible-by-construction instances must be reported as such by both
/// methods (never "optimal" with a violated answer).
class RandomInfeasibleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomInfeasibleTest, BothMethodsReportInfeasible) {
  Rng rng(GetParam());
  Model m;
  const std::size_t vars = 2 + rng.uniform_index(6);
  std::vector<Term> sum_terms;
  for (std::size_t i = 0; i < vars; ++i) {
    m.add_variable(0.0, kInf, rng.uniform(0.0, 2.0));
    sum_terms.push_back({static_cast<int>(i), 1.0});
  }
  // sum x >= 10 while every variable is <= 1 and there are < 10 of them.
  m.add_constraint(sum_terms, Sense::kGe, 10.0);
  for (std::size_t i = 0; i < vars; ++i) {
    m.add_constraint({{static_cast<int>(i), 1.0}}, Sense::kLe, 1.0);
  }
  for (Method method : {Method::kDense, Method::kRevised, Method::kSparse}) {
    SolveOptions opt;
    opt.method = method;
    EXPECT_EQ(solve(m, opt).status, SolveStatus::kInfeasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInfeasibleTest,
                         ::testing::Range<std::uint64_t>(42, 54));

}  // namespace
}  // namespace sb::lp
