// Dual revised simplex over the same sparse LU/eta basis as the primal
// engine (lp/basis.h, lp/lu_factor.h), with a bound-flipping (long-step)
// ratio test.
//
// Where the primal engine iterates on primal feasibility and prices by
// reduced cost, the dual engine starts from a DUAL-feasible basis (every
// nonbasic reduced cost has the right sign for its bound) and drives out
// primal bound violations row by row. That makes it the natural re-solve
// engine after bound tightening: tightening bounds on an optimal basis
// leaves the duals feasible and only perturbs primal feasibility — exactly
// the dual simplex's starting condition. The provisioner's capacity-floor
// re-solves and the block decomposition's clean-up phase are both that
// shape.
//
// The bound-flipping ratio test is what makes it fast on Switchboard's
// bounded-column LPs: the dual step's objective is piecewise linear in the
// step length, with one breakpoint per candidate entering column. A boxed
// breakpoint column does not have to enter — it can flip to its opposite
// bound, pay its |alpha| * range in slope, and let the step continue. One
// dual pivot can therefore flip arbitrarily many bounded variables (plus a
// single batched FTRAN for all of them) where the primal pays an iteration
// per flip.
//
// The engine never fails hard: any condition it cannot handle — a start
// that cannot be made dual feasible by bound flips, numerical trouble a
// refactorization does not cure, residual dual infeasibility at the end —
// sets DualSolveStats::needs_primal_cleanup and returns the current
// (always valid) basis statuses, which the solver facade feeds to the
// primal engine as a warm start.
#pragma once

#include <vector>

#include "lp/dense_simplex.h"
#include "lp/revised_simplex.h"
#include "lp/standard_form.h"

namespace sb::lp {

/// Per-solve counters for the dual engine, surfaced as sb.lp.* metrics.
struct DualSolveStats {
  std::size_t factorizations = 0;
  std::size_t eta_nnz = 0;
  std::size_t bound_flips = 0;  ///< nonbasic flips (ratio-test + start repair)
  /// The dual engine could not finish: the returned SfSolution's statuses
  /// hold a valid basis to warm-start the primal engine from; its status
  /// field is kIterationLimit and its values are meaningless.
  bool needs_primal_cleanup = false;
};

/// Solves a standard-form LP (BoundPolicy::kInline) with the dual simplex.
/// `warm` has the same contract as solve_sparse: per-structural statuses,
/// optionally followed by per-row logical statuses; null means a cold
/// all-logical start. See DualSolveStats::needs_primal_cleanup for the
/// fallback contract.
SfSolution solve_dual(const StandardForm& sf, const SimplexOptions& options,
                      const std::vector<VarStatus>* warm = nullptr,
                      DualSolveStats* stats = nullptr);

}  // namespace sb::lp
