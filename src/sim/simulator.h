// Discrete-event call simulator: replays a call-record trace against an
// allocator, tracking per-DC core usage, per-link traffic, per-call ACL,
// and migrations. This is the evaluation harness behind §6.4 (migration
// frequency) and the realized-usage sanity checks against provisioned
// capacity.
//
// Event model per call: the first joiner starts the call (allocator picks
// the initial DC); remaining legs join at their offsets; the media type may
// escalate mid-call; the config freezes A seconds in (allocator may
// migrate); the call ends. Loads follow the Table 1 model and the joined
// participant set at each instant.
#pragma once

#include "calls/call_record.h"
#include "sim/allocator.h"

namespace sb {

struct SimReport {
  std::string allocator;
  std::uint64_t calls = 0;
  std::uint64_t frozen = 0;      ///< calls that lived past the freeze point
  std::uint64_t migrations = 0;
  double migration_fraction = 0.0;  ///< migrations / calls (§6.4)
  /// Call-weighted mean ACL at the final hosting DC.
  double mean_acl_ms = 0.0;
  /// Fraction of calls whose first joiner is in the majority country
  /// (§5.4 reports 95.2% in Teams).
  double first_joiner_majority_fraction = 0.0;
  std::vector<double> dc_peak_cores;   ///< realized per-DC peaks
  std::vector<double> link_peak_gbps;  ///< realized per-link peaks
  std::uint64_t peak_concurrent_calls = 0;

  [[nodiscard]] double total_peak_cores() const;
  [[nodiscard]] double total_peak_gbps() const;
};

class Simulator {
 public:
  explicit Simulator(EvalContext ctx);

  /// Replays `db` against `allocator`. `freeze_delay_s` is the A parameter
  /// (§6.4); calls shorter than it are never frozen or migrated.
  SimReport run(const CallRecordDatabase& db, CallAllocator& allocator,
                double freeze_delay_s = 300.0) const;

 private:
  EvalContext ctx_;
};

}  // namespace sb
