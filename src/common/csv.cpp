#include "common/csv.h"

#include <ostream>

#include "common/table.h"

namespace sb {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.push_back(label);
  for (double v : values) fields.push_back(format_double(v, precision));
  write_row(fields);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    if (field_started || !field.empty() || !row.empty()) {
      end_field();
      rows.push_back(std::move(row));
      row.clear();
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // the next field exists even if empty
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field += ch;
        field_started = true;
    }
  }
  end_row();
  return rows;
}

}  // namespace sb
