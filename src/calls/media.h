// Media types and the per-participant resource load model of Table 1.
//
// A call's media type is the most demanding stream anyone shares (§5.1):
// audio by default, video if anyone turns a camera on and nobody shares a
// screen, screen-share as soon as anyone shares a screen. Video has the
// highest network-to-compute ratio (30-40x network for 2-4x compute), which
// is why Switchboard offloads audio calls to remote DCs first (§6.3).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace sb {

enum class MediaType : std::uint8_t { kAudio = 0, kScreenShare = 1, kVideo = 2 };

inline constexpr std::size_t kMediaTypeCount = 3;

/// Short label for tables ("audio", "screen", "video").
std::string to_string(MediaType media);

/// Per-participant resource loads by media type: CL_m (cores) and NL_m
/// (Mbps, both directions aggregated) from Table 2's notation.
class LoadModel {
 public:
  /// Constructs from explicit per-media loads (index = MediaType value).
  LoadModel(std::array<double, kMediaTypeCount> cores_per_participant,
            std::array<double, kMediaTypeCount> mbps_per_participant);

  /// Table 1's relative values on plausible absolute bases:
  /// audio 1x/1x, screen-share 1.5x/15x, video 3x/35x.
  static LoadModel paper_default();

  /// Cores one participant of a `media` call consumes on the MP server.
  [[nodiscard]] double cores_per_participant(MediaType media) const;

  /// WAN Mbps one participant's call leg carries (up + down aggregate).
  [[nodiscard]] double mbps_per_participant(MediaType media) const;

  /// Network-to-compute load ratio normalized to audio's ratio; Table 1's
  /// right column, the quantity that orders offload preference.
  [[nodiscard]] double offload_ratio(MediaType media) const;

 private:
  std::array<double, kMediaTypeCount> cores_;
  std::array<double, kMediaTypeCount> mbps_;
};

}  // namespace sb
