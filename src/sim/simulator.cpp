#include "sim/simulator.h"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/span.h"
#include "obs/timer.h"
#include "obs/timeseries.h"

namespace sb {

double SimReport::total_peak_cores() const {
  double acc = 0.0;
  for (double v : dc_peak_cores) acc += v;
  return acc;
}

double SimReport::total_peak_gbps() const {
  double acc = 0.0;
  for (double v : link_peak_gbps) acc += v;
  return acc;
}

double SimReport::dc_bucket_peak(std::size_t dc) const {
  if (dc >= dc_cores_buckets.size()) return 0.0;
  double peak = 0.0;
  for (double v : dc_cores_buckets[dc]) peak = std::max(peak, v);
  return peak;
}

namespace {

enum class EventType : std::uint8_t {
  kStart = 0,
  kLegJoin = 1,
  kMediaChange = 2,
  kFreeze = 3,
  kEnd = 4,
  kFault = 5,
};

struct Event {
  SimTime time;
  std::uint64_t seq;  ///< tie-break so ordering is deterministic
  EventType type;
  std::size_t record;  ///< record index; fault-event index for kFault
  std::size_t leg;     ///< for kLegJoin

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Live per-call simulation state.
struct LiveCall {
  DcId dc;
  MediaType media = MediaType::kAudio;
  std::vector<CallLeg> joined;
  bool active = false;
  ServerId server;  ///< packed media server (invalid until freeze / no fleet)
};

/// Batched-engine live call state: trivially small, the joined legs stored
/// as a run in a shared LocationId arena (legs_base/legs_count) instead of
/// a per-call heap vector — no allocation on the replay path.
struct BatchedLive {
  DcId dc;
  ServerId server;  ///< packed media server (invalid until freeze / no fleet)
  std::uint32_t legs_base = 0;
  std::uint32_t legs_count = 0;
  MediaType media = MediaType::kAudio;
  bool active = false;
};

/// Batched-engine event: a self-contained 32-byte record. The call id and
/// every per-event payload (joiner location, starting media, media-change
/// target, majority-first flag) are per-record constants, so they are
/// resolved once at event-construction time; the hot loop then never
/// dereferences a CallRecord — one sequential array scan instead of a
/// random cache-missing read per event.
struct BEvent {
  SimTime time;
  std::uint32_t seq;     ///< tie-break matching the reference heap pop order
  std::uint32_t record;  ///< record index; fault-event index for kFault
  CallId call;           ///< the record's id (unused for kFault)
  LocationId loc;        ///< kStart: first joiner; kLegJoin: the joining leg
  EventType type = EventType::kFault;
  MediaType media = MediaType::kAudio;  ///< kStart: start; kMediaChange: target
  bool majority_first = false;  ///< kStart: first joiner is the majority loc

  friend bool operator>(const BEvent& a, const BEvent& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Sorts the batched engine's event array into ascending (time, seq) order
/// — the exact sequence the reference heap pops. Events are distributed
/// into monotonic time buckets (one counting pass + one scatter), then each
/// small bucket is sorted; equal timestamps always share a bucket, so the
/// result is identical to a full comparison sort of this strict total
/// order, at a fraction of the compare/move traffic.
template <typename E>
void sort_events(std::vector<E>& events) {
  constexpr std::size_t kSmall = 1 << 12;
  const auto ascending = [](const E& a, const E& b) { return b > a; };
  if (events.size() < kSmall) {
    std::sort(events.begin(), events.end(), ascending);
    return;
  }
  double lo = events.front().time;
  double hi = lo;
  for (const E& e : events) {
    lo = std::min(lo, e.time);
    hi = std::max(hi, e.time);
  }
  if (!(hi > lo)) {
    std::sort(events.begin(), events.end(), ascending);
    return;
  }
  const std::size_t buckets = events.size() / 16;
  const double scale = static_cast<double>(buckets) / (hi - lo);
  const auto bucket_of = [&](double t) {
    const auto b = static_cast<std::size_t>((t - lo) * scale);
    return std::min(b, buckets - 1);
  };
  std::vector<std::uint32_t> bounds(buckets + 1, 0);
  for (const E& e : events) ++bounds[bucket_of(e.time) + 1];
  for (std::size_t b = 1; b <= buckets; ++b) bounds[b] += bounds[b - 1];
  std::vector<E> sorted(events.size());
  {
    std::vector<std::uint32_t> cursor(bounds.begin(), bounds.end() - 1);
    for (const E& e : events) sorted[cursor[bucket_of(e.time)]++] = e;
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    std::sort(sorted.begin() + bounds[b], sorted.begin() + bounds[b + 1],
              ascending);
  }
  events.swap(sorted);
}

/// Mutable usage counters with peak tracking, plus sample-and-hold bucket
/// sampling of per-DC cores on a grid anchored at t = 0: advance(t) records
/// the current load into every bucket whose end is <= t, so bucket b holds
/// the load at exactly (b+1)*bucket_s. Because every partition samples the
/// same grid, per-bucket values sum exactly across concurrent partitions.
class UsageTracker {
 public:
  UsageTracker(const EvalContext& ctx, double bucket_s)
      : ctx_(ctx),
        dc_cores_(ctx.world->dc_count(), 0.0),
        dc_peaks_(ctx.world->dc_count(), 0.0),
        link_gbps_(ctx.topology->link_count(), 0.0),
        link_peaks_(ctx.topology->link_count(), 0.0),
        server_cores_(ctx.world->server_count(), 0.0),
        server_peaks_(ctx.world->server_count(), 0.0),
        dc_buckets_(ctx.world->dc_count()),
        loc_count_(ctx.world->location_count()),
        bucket_s_(bucket_s),
        next_bucket_end_(bucket_s) {
    // add_leg runs once per joined leg per event — the most-executed code
    // in a replay. Flatten everything it would otherwise chase through
    // World / LoadModel / Topology (all immutable for the run) into dense
    // tables: per-media load rates and a (dc, location) -> WAN-links CSR so
    // the per-leg work is pure arithmetic on this object's own arrays.
    for (int m = 0; m < 3; ++m) {
      const auto media = static_cast<MediaType>(m);
      cores_media_[m] = ctx.loads->cores_per_participant(media);
      gbps_media_[m] = ctx.loads->mbps_per_participant(media) / kMbpsPerGbps;
    }
    const std::size_t dcs = ctx.world->dc_count();
    path_off_.reserve(dcs * loc_count_ + 1);
    path_off_.push_back(0);
    for (std::size_t dc = 0; dc < dcs; ++dc) {
      const LocationId dc_loc = ctx.world->datacenter(DcId(dc)).location;
      for (std::size_t loc = 0; loc < loc_count_; ++loc) {
        for (LinkId l : ctx.topology->path(dc_loc, LocationId(loc))) {
          path_flat_.push_back(l);
        }
        path_off_.push_back(static_cast<std::uint32_t>(path_flat_.size()));
      }
    }
  }

  /// Call before applying any event at time `t` (events AT a bucket
  /// boundary land in the bucket that starts there, not the one ending).
  void advance(SimTime t) {
    while (next_bucket_end_ <= t) {
      for (std::size_t x = 0; x < dc_cores_.size(); ++x) {
        dc_buckets_[x].push_back(dc_cores_[x]);
      }
      next_bucket_end_ += bucket_s_;
    }
  }

  void add_leg(DcId dc, MediaType media, LocationId loc, double sign) {
    // Same arithmetic as the direct model lookups (the tables hold the
    // exact same doubles), so every accumulation is bit-identical.
    const double cores = cores_media_[static_cast<int>(media)] * sign;
    dc_cores_[dc.value()] += cores;
    if (sign > 0) {
      dc_peaks_[dc.value()] =
          std::max(dc_peaks_[dc.value()], dc_cores_[dc.value()]);
    }
    const double gbps = gbps_media_[static_cast<int>(media)] * sign;
    const std::size_t pair = dc.value() * loc_count_ + loc.value();
    const std::uint32_t end = path_off_[pair + 1];
    for (std::uint32_t i = path_off_[pair]; i < end; ++i) {
      const std::size_t l = path_flat_[i].value();
      link_gbps_[l] += gbps;
      if (sign > 0) {
        link_peaks_[l] = std::max(link_peaks_[l], link_gbps_[l]);
      }
    }
  }

  void add_call(const LiveCall& call, double sign) {
    for (const CallLeg& leg : call.joined) {
      add_leg(call.dc, call.media, leg.location, sign);
    }
  }

  /// Arena form used by the batched engine: the joined legs live as a
  /// LocationId run in a shared arena instead of a per-call vector. Same
  /// updates in the same order as add_call, so every accumulator (and its
  /// floating-point rounding) is bit-identical.
  void add_legs(DcId dc, MediaType media, const LocationId* locs,
                std::size_t count, double sign) {
    for (std::size_t i = 0; i < count; ++i) {
      add_leg(dc, media, locs[i], sign);
    }
  }

  /// Packer-footprint accounting (static frozen footprint, not joined
  /// legs — the packer's own unit). No-op for an invalid server.
  void add_server(ServerId server, double cores) {
    if (!server.valid() || server.value() >= server_cores_.size()) return;
    server_cores_[server.value()] += cores;
    if (cores > 0.0) {
      server_peaks_[server.value()] = std::max(
          server_peaks_[server.value()], server_cores_[server.value()]);
    }
  }

  [[nodiscard]] const std::vector<double>& dc_peaks() const {
    return dc_peaks_;
  }
  [[nodiscard]] const std::vector<double>& link_peaks() const {
    return link_peaks_;
  }
  [[nodiscard]] const std::vector<double>& server_peaks() const {
    return server_peaks_;
  }
  [[nodiscard]] std::vector<std::vector<double>>&& take_dc_buckets() {
    return std::move(dc_buckets_);
  }

 private:
  const EvalContext& ctx_;
  std::vector<double> dc_cores_;
  std::vector<double> dc_peaks_;
  std::vector<double> link_gbps_;
  std::vector<double> link_peaks_;
  std::vector<double> server_cores_;
  std::vector<double> server_peaks_;
  std::vector<std::vector<double>> dc_buckets_;
  std::size_t loc_count_;
  double cores_media_[3] = {0.0, 0.0, 0.0};
  double gbps_media_[3] = {0.0, 0.0, 0.0};
  /// CSR over (dc, location): links on the WAN path, in path order.
  std::vector<std::uint32_t> path_off_;
  std::vector<LinkId> path_flat_;
  double bucket_s_;
  SimTime next_bucket_end_;
};

}  // namespace

/// Per-partition accumulator; one per driver thread, merged after the join.
struct Simulator::Partial {
  std::uint64_t calls = 0;
  std::uint64_t frozen = 0;
  std::uint64_t migrations = 0;
  double acl_sum = 0.0;
  std::uint64_t majority_first = 0;
  std::uint64_t peak_concurrent = 0;
  std::uint64_t failover_migrations = 0;
  std::uint64_t dropped = 0;
  std::vector<double> dc_peaks;
  std::vector<double> link_peaks;
  std::vector<double> server_peaks;
  std::vector<std::vector<double>> dc_buckets;
  std::vector<HostingEvent> hosting;  ///< filled only when a log was requested

  void merge(Partial& other) {
    calls += other.calls;
    frozen += other.frozen;
    migrations += other.migrations;
    acl_sum += other.acl_sum;
    majority_first += other.majority_first;
    failover_migrations += other.failover_migrations;
    dropped += other.dropped;
    // Peaks merge as sums of per-partition peaks: an upper bound on the
    // time-aligned peak (partitions replay without a shared clock).
    peak_concurrent += other.peak_concurrent;
    if (dc_peaks.empty()) dc_peaks.assign(other.dc_peaks.size(), 0.0);
    for (std::size_t i = 0; i < other.dc_peaks.size(); ++i) {
      dc_peaks[i] += other.dc_peaks[i];
    }
    if (link_peaks.empty()) link_peaks.assign(other.link_peaks.size(), 0.0);
    for (std::size_t i = 0; i < other.link_peaks.size(); ++i) {
      link_peaks[i] += other.link_peaks[i];
    }
    if (server_peaks.empty()) {
      server_peaks.assign(other.server_peaks.size(), 0.0);
    }
    for (std::size_t i = 0; i < other.server_peaks.size(); ++i) {
      server_peaks[i] += other.server_peaks[i];
    }
    // Bucket samples sum exactly: every partition samples the same grid. A
    // partition whose stream ended early contributes zero to later buckets
    // (all its calls have ended by then), so padding is implicit.
    if (dc_buckets.empty()) dc_buckets.resize(other.dc_buckets.size());
    for (std::size_t x = 0; x < other.dc_buckets.size(); ++x) {
      if (dc_buckets[x].size() < other.dc_buckets[x].size()) {
        dc_buckets[x].resize(other.dc_buckets[x].size(), 0.0);
      }
      for (std::size_t b = 0; b < other.dc_buckets[x].size(); ++b) {
        dc_buckets[x][b] += other.dc_buckets[x][b];
      }
    }
    // Hosting events concatenate partition-by-partition: each record lives
    // in exactly one partition, so its events stay in replay order.
    hosting.insert(hosting.end(),
                   std::make_move_iterator(other.hosting.begin()),
                   std::make_move_iterator(other.hosting.end()));
  }
};

/// Shared coordination for fault events. In sequential mode (parties <= 1)
/// the replaying thread invokes the allocator hook inline. In concurrent
/// mode every partition's queue carries every fault event, so each fault is
/// a rendezvous: arrivals block until all `parties` partitions reach it,
/// the last arrival invokes the hook (all peers are parked in the wait, so
/// the drain races no call event — same semantics as the sequential
/// driver), and the outcome lands in a per-event slot each partition then
/// applies to its own calls.
struct Simulator::FaultRuntime {
  std::vector<fault::FaultEvent> events;
  std::vector<fault::FailoverOutcome> outcomes;
  std::size_t parties = 1;
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t waiting = 0;
  std::uint64_t generation = 0;

  explicit FaultRuntime(const fault::FaultSchedule& schedule,
                        std::size_t parties_in)
      : events(schedule.events()),
        outcomes(events.size()),
        parties(parties_in) {}

  static void invoke(CallAllocator& allocator, const fault::FaultEvent& fe,
                     fault::FailoverOutcome& slot) {
    switch (fe.kind) {
      case fault::FaultEvent::Kind::kDcDown:
        slot = allocator.on_dc_failed(fe.dc, fe.time);
        break;
      case fault::FaultEvent::Kind::kDcUp:
        allocator.on_dc_recovered(fe.dc, fe.time);
        break;
      case fault::FaultEvent::Kind::kLinkDown:
        allocator.on_link_failed(fe.link, fe.time);
        break;
      case fault::FaultEvent::Kind::kLinkUp:
        allocator.on_link_recovered(fe.link, fe.time);
        break;
      case fault::FaultEvent::Kind::kServerDown:
        slot = allocator.on_server_failed(fe.server, fe.time);
        break;
      case fault::FaultEvent::Kind::kServerUp:
        allocator.on_server_recovered(fe.server, fe.time);
        break;
      case fault::FaultEvent::Kind::kWorkerDown:
        slot = allocator.on_worker_failed(fe.worker, fe.time);
        break;
      case fault::FaultEvent::Kind::kWorkerUp:
        allocator.on_worker_recovered(fe.worker, fe.time);
        break;
    }
  }

  /// Returns once `outcomes[index]` is populated for this event.
  void arrive(CallAllocator& allocator, std::size_t index) {
    if (parties <= 1) {
      invoke(allocator, events[index], outcomes[index]);
      return;
    }
    std::unique_lock lock(mutex);
    if (++waiting == parties) {
      // Last arrival: every peer is parked in the wait below, so the hook
      // (e.g. a full drain through the selector) runs with the allocator
      // quiesced, exactly like the sequential driver.
      invoke(allocator, events[index], outcomes[index]);
      waiting = 0;
      ++generation;
      cv.notify_all();
    } else {
      const std::uint64_t gen = generation;
      cv.wait(lock, [&] { return generation != gen; });
    }
  }
};

Simulator::Metrics::Metrics(const EvalContext& ctx)
    : calls(obs::MetricsRegistry::global().counter("sb.sim.calls")),
      frozen(obs::MetricsRegistry::global().counter("sb.sim.frozen")),
      migrations(obs::MetricsRegistry::global().counter("sb.sim.migrations")),
      acl_ms(obs::MetricsRegistry::global().histogram(
          "sb.sim.acl_ms", {.min = 0.1, .max = 1000.0, .bucket_count = 80})),
      run_s(obs::MetricsRegistry::global().histogram("sb.sim.run_s")),
      peak_concurrent_calls(obs::MetricsRegistry::global().gauge(
          "sb.sim.peak_concurrent_calls")) {
  require(ctx.world != nullptr, "Simulator: incomplete context");
  dc_peak_cores.reserve(ctx.world->dc_count());
  for (std::size_t x = 0; x < ctx.world->dc_count(); ++x) {
    dc_peak_cores.push_back(&obs::MetricsRegistry::global().gauge(
        "sb.sim.dc_peak_cores." + std::to_string(x)));
  }
}

Simulator::Simulator(EvalContext ctx) : ctx_(ctx), metrics_(ctx_) {
  require(ctx_.world && ctx_.topology && ctx_.latency && ctx_.registry &&
              ctx_.loads,
          "Simulator: incomplete context");
}

void Simulator::replay_partition(const CallRecordDatabase& db,
                                 CallAllocator& allocator,
                                 double freeze_delay_s,
                                 const std::vector<std::uint8_t>& mine,
                                 Partial& out, FaultRuntime* faults,
                                 double bucket_s, bool log_hosting,
                                 std::size_t partition,
                                 std::uint64_t parent_span) const {
  obs::Span span("sim.partition", obs::Subsystem::kSim, obs::kNoSimTime,
                 parent_span);
  span.attr(obs::AttrKey::kPartition, static_cast<std::int64_t>(partition));
  std::uint64_t event_count = 0;
  const auto& records = db.records();
  // The packer's per-call unit: the static frozen footprint (config
  // participants x per-participant cores), NOT the joined-leg load — the
  // same quantity the selector admits to the packer at freeze time.
  const auto packed_footprint = [this](const CallRecord& r) {
    const CallConfig& cfg = ctx_.registry->get(r.config);
    return cfg.total_participants() *
           ctx_.loads->cores_per_participant(cfg.media());
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::uint64_t seq = 0;
  // Fault events take the lowest sequence numbers so that at an equal
  // timestamp the fault applies before any call event — every partition
  // (and the sequential driver) therefore orders them identically.
  std::unordered_map<CallId, std::size_t> id_to_record;
  if (faults != nullptr) {
    for (std::size_t f = 0; f < faults->events.size(); ++f) {
      queue.push({faults->events[f].time, seq++, EventType::kFault, f, 0});
    }
  }
  for (std::size_t r = 0; r < records.size(); ++r) {
    if (!mine[r]) continue;
    const CallRecord& rec = records[r];
    if (faults != nullptr) id_to_record.emplace(rec.id, r);
    queue.push({rec.start_s, seq++, EventType::kStart, r, 0});
    for (std::size_t leg = 1; leg < rec.legs.size(); ++leg) {
      queue.push({rec.start_s + rec.legs[leg].join_offset_s, seq++,
                  EventType::kLegJoin, r, leg});
    }
    const CallConfig& config = ctx_.registry->get(rec.config);
    if (config.media() != MediaType::kAudio && rec.media_change_offset_s > 0.0) {
      queue.push({rec.start_s + rec.media_change_offset_s, seq++,
                  EventType::kMediaChange, r, 0});
    }
    if (rec.duration_s > freeze_delay_s) {
      queue.push({rec.start_s + freeze_delay_s, seq++, EventType::kFreeze, r,
                  0});
    }
    queue.push({rec.start_s + rec.duration_s, seq++, EventType::kEnd, r, 0});
  }

  UsageTracker usage(ctx_, bucket_s);
  std::vector<LiveCall> live(records.size());
  std::uint64_t concurrent = 0;

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    usage.advance(ev.time);
    if (telemetry_ != nullptr) telemetry_->sample(ev.time);
    ++event_count;

    if (ev.type == EventType::kFault) {
      faults->arrive(allocator, ev.record);
      // Re-point this partition's accounting for every one of ITS calls the
      // allocator moved or dropped (other partitions handle their own).
      const fault::FailoverOutcome& outcome = faults->outcomes[ev.record];
      for (const fault::FailoverMove& m : outcome.moved) {
        const auto it = id_to_record.find(m.call);
        if (it == id_to_record.end()) continue;
        LiveCall& call = live[it->second];
        if (!call.active) continue;
        usage.add_call(call, -1.0);
        call.dc = m.to;
        usage.add_call(call, +1.0);
        if (call.server != m.to_server) {
          const double fp = packed_footprint(records[it->second]);
          usage.add_server(call.server, -fp);
          call.server = m.to_server;
          usage.add_server(call.server, +fp);
        }
        ++out.failover_migrations;
        if (log_hosting) {
          out.hosting.push_back({it->second, ev.time,
                                 HostingEvent::Kind::kMove, m.to,
                                 m.to_server});
        }
      }
      for (CallId dropped : outcome.dropped) {
        const auto it = id_to_record.find(dropped);
        if (it == id_to_record.end()) continue;
        LiveCall& call = live[it->second];
        if (!call.active) continue;
        usage.add_call(call, -1.0);
        if (call.server.valid()) {
          usage.add_server(call.server,
                           -packed_footprint(records[it->second]));
          call.server = ServerId();
        }
        call.active = false;
        --concurrent;
        ++out.dropped;
        if (log_hosting) {
          out.hosting.push_back({it->second, ev.time,
                                 HostingEvent::Kind::kDrop, DcId(),
                                 ServerId()});
        }
      }
      continue;
    }

    const CallRecord& rec = records[ev.record];
    const CallConfig& config = ctx_.registry->get(rec.config);
    LiveCall& call = live[ev.record];

    switch (ev.type) {
      case EventType::kStart: {
        const LocationId first = rec.legs.front().location;
        call.dc = allocator.on_call_start(rec.id, first, ev.time);
        // Media starts as audio when an upgrade event is pending, else at
        // the config's media type.
        call.media = rec.media_change_offset_s > 0.0 ? MediaType::kAudio
                                                     : config.media();
        call.joined = {rec.legs.front()};
        call.active = true;
        usage.add_leg(call.dc, call.media, first, +1.0);
        ++out.calls;
        if (log_hosting) {
          out.hosting.push_back({ev.record, ev.time,
                                 HostingEvent::Kind::kStart, call.dc,
                                 ServerId()});
        }
        if (first == config.majority_location()) ++out.majority_first;
        ++concurrent;
        out.peak_concurrent = std::max(out.peak_concurrent, concurrent);
        break;
      }
      case EventType::kLegJoin: {
        if (!call.active) break;  // leg joined after the call ended
        call.joined.push_back(rec.legs[ev.leg]);
        usage.add_leg(call.dc, call.media, rec.legs[ev.leg].location, +1.0);
        break;
      }
      case EventType::kMediaChange: {
        if (!call.active) break;
        usage.add_call(call, -1.0);
        call.media = config.media();
        usage.add_call(call, +1.0);
        break;
      }
      case EventType::kFreeze: {
        if (!call.active) break;
        ++out.frozen;
        const FreezeResult result =
            allocator.on_config_frozen(rec.id, rec.config, config, ev.time);
        if (result.server.valid()) {
          // First packing of this call (the selector packs at freeze); a
          // call freezes once, so there is no old footprint to release.
          call.server = result.server;
          usage.add_server(call.server, +packed_footprint(rec));
        }
        if (result.migrated) {
          ++out.migrations;
          usage.add_call(call, -1.0);
          call.dc = result.dc;
          usage.add_call(call, +1.0);
          if (log_hosting) {
            out.hosting.push_back({ev.record, ev.time,
                                   HostingEvent::Kind::kMove, call.dc,
                                   call.server});
          }
        } else if (result.server.valid() && log_hosting) {
          // Fleet runs log the packing decision even without a DC change;
          // without a fleet this event never appears, keeping no-fleet
          // logs byte-identical to the pre-fleet format.
          out.hosting.push_back({ev.record, ev.time,
                                 HostingEvent::Kind::kPack, call.dc,
                                 call.server});
        }
        break;
      }
      case EventType::kEnd: {
        if (!call.active) break;  // dropped by a failover before its end
        usage.add_call(call, -1.0);
        if (call.server.valid()) {
          usage.add_server(call.server, -packed_footprint(rec));
        }
        call.active = false;
        if (log_hosting) {
          out.hosting.push_back({ev.record, ev.time,
                                 HostingEvent::Kind::kEnd, DcId(),
                                 ServerId()});
        }
        allocator.on_call_end(rec.id, ev.time);
        const double final_acl_ms = acl_ms(config, call.dc, *ctx_.latency);
        out.acl_sum += final_acl_ms;
        metrics_.acl_ms.record(final_acl_ms);
        --concurrent;
        break;
      }
      case EventType::kFault:
        break;  // handled above
    }
  }

  out.dc_peaks = usage.dc_peaks();
  out.link_peaks = usage.link_peaks();
  out.server_peaks = usage.server_peaks();
  out.dc_buckets = usage.take_dc_buckets();
  span.attr(obs::AttrKey::kEvents, static_cast<std::int64_t>(event_count));
}

void Simulator::replay_partition_batched(
    const CallRecordDatabase& db, CallAllocator& allocator,
    double freeze_delay_s, const std::vector<std::uint8_t>& mine, Partial& out,
    FaultRuntime* faults, double bucket_s, bool log_hosting,
    std::size_t partition, std::uint64_t parent_span) const {
  obs::Span span("sim.partition", obs::Subsystem::kSim, obs::kNoSimTime,
                 parent_span);
  span.attr(obs::AttrKey::kPartition, static_cast<std::int64_t>(partition));
  std::uint64_t event_count = 0;
  const auto& records = db.records();

  // SoA precompute: one pass resolves every owned record's config and its
  // packer footprint, so the hot loop never touches the registry. Slots for
  // records of other partitions stay null/zero and are never read.
  std::vector<const CallConfig*> configs(records.size(), nullptr);
  std::vector<ConfigId> config_ids(records.size());
  std::vector<double> footprints(records.size(), 0.0);
  std::vector<BatchedLive> live(records.size());
  std::uint32_t arena_size = 0;

  // Event construction mirrors the reference heap build exactly — same
  // insertion order, same seq assignment (faults first, so at an equal
  // timestamp a fault orders before any call event). Sorting by (time, seq)
  // replays the identical total order the heap pops, without per-event heap
  // churn. Every per-record constant an event needs (the call id, the first
  // joiner, the starting media, the majority-first flag, the media-change
  // target) is folded into the event here, where the record is already hot.
  std::vector<BEvent> events;
  {
    // Upper bound: start + freeze + end + media change + joins per record.
    std::size_t cap = faults != nullptr ? faults->events.size() : 0;
    for (std::size_t r = 0; r < records.size(); ++r) {
      if (mine[r]) cap += records[r].legs.size() + 3;
    }
    events.reserve(cap);
  }
  std::uint32_t seq = 0;
  std::unordered_map<CallId, std::size_t> id_to_record;
  if (faults != nullptr) {
    for (std::size_t f = 0; f < faults->events.size(); ++f) {
      events.push_back({faults->events[f].time, seq++,
                        static_cast<std::uint32_t>(f), CallId(), LocationId(),
                        EventType::kFault});
    }
  }
  for (std::size_t r = 0; r < records.size(); ++r) {
    if (!mine[r]) continue;
    const CallRecord& rec = records[r];
    if (faults != nullptr) id_to_record.emplace(rec.id, r);
    const CallConfig& config = ctx_.registry->get(rec.config);
    configs[r] = &config;
    config_ids[r] = rec.config;
    footprints[r] = config.total_participants() *
                    ctx_.loads->cores_per_participant(config.media());
    live[r].legs_base = arena_size;
    arena_size += static_cast<std::uint32_t>(rec.legs.size());
    const auto r32 = static_cast<std::uint32_t>(r);
    const LocationId first = rec.legs.front().location;
    const MediaType start_media = rec.media_change_offset_s > 0.0
                                      ? MediaType::kAudio
                                      : config.media();
    events.push_back({rec.start_s, seq++, r32, rec.id, first,
                      EventType::kStart, start_media,
                      first == config.majority_location()});
    for (std::size_t leg = 1; leg < rec.legs.size(); ++leg) {
      events.push_back({rec.start_s + rec.legs[leg].join_offset_s, seq++, r32,
                        rec.id, rec.legs[leg].location, EventType::kLegJoin});
    }
    if (config.media() != MediaType::kAudio && rec.media_change_offset_s > 0.0) {
      events.push_back({rec.start_s + rec.media_change_offset_s, seq++, r32,
                        rec.id, LocationId(), EventType::kMediaChange,
                        config.media()});
    }
    if (rec.duration_s > freeze_delay_s) {
      events.push_back({rec.start_s + freeze_delay_s, seq++, r32, rec.id,
                        LocationId(), EventType::kFreeze});
    }
    events.push_back({rec.start_s + rec.duration_s, seq++, r32, rec.id,
                      LocationId(), EventType::kEnd});
  }
  sort_events(events);

  UsageTracker usage(ctx_, bucket_s);
  // The joined-leg arena: each owned record's legs occupy the contiguous
  // run [legs_base, legs_base + legs_count) in insertion order.
  std::vector<LocationId> arena(arena_size);
  std::uint64_t concurrent = 0;
  // ACL histogram records are deferred and flushed once per partition: the
  // values (and so the final histogram state) are identical to the
  // reference engine's inline records, minus one atomic RMW per call end on
  // the hot path.
  std::vector<double> acl_deferred;

  const std::size_t n = events.size();
  std::size_t i = 0;
  while (i < n) {
    if (events[i].type == EventType::kFault) {
      // Faults run outside any batch: the allocator's batch lock (if any)
      // has been released, so the barrier hook (drain) and the peers parked
      // at the rendezvous never hold the controller's shared lock.
      const BEvent ev = events[i];
      usage.advance(ev.time);
      if (telemetry_ != nullptr) telemetry_->sample(ev.time);
      ++event_count;
      faults->arrive(allocator, ev.record);
      const fault::FailoverOutcome& outcome = faults->outcomes[ev.record];
      for (const fault::FailoverMove& m : outcome.moved) {
        const auto it = id_to_record.find(m.call);
        if (it == id_to_record.end()) continue;
        BatchedLive& call = live[it->second];
        if (!call.active) continue;
        const LocationId* legs = arena.data() + call.legs_base;
        usage.add_legs(call.dc, call.media, legs, call.legs_count, -1.0);
        call.dc = m.to;
        usage.add_legs(call.dc, call.media, legs, call.legs_count, +1.0);
        if (call.server != m.to_server) {
          const double fp = footprints[it->second];
          usage.add_server(call.server, -fp);
          call.server = m.to_server;
          usage.add_server(call.server, +fp);
        }
        ++out.failover_migrations;
        if (log_hosting) {
          out.hosting.push_back({it->second, ev.time,
                                 HostingEvent::Kind::kMove, m.to,
                                 m.to_server});
        }
      }
      for (CallId dropped : outcome.dropped) {
        const auto it = id_to_record.find(dropped);
        if (it == id_to_record.end()) continue;
        BatchedLive& call = live[it->second];
        if (!call.active) continue;
        usage.add_legs(call.dc, call.media, arena.data() + call.legs_base,
                       call.legs_count, -1.0);
        if (call.server.valid()) {
          usage.add_server(call.server, -footprints[it->second]);
          call.server = ServerId();
        }
        call.active = false;
        --concurrent;
        ++out.dropped;
        if (log_hosting) {
          out.hosting.push_back({it->second, ev.time,
                                 HostingEvent::Kind::kDrop, DcId(),
                                 ServerId()});
        }
      }
      ++i;
      continue;
    }

    // One batch: up to batch_events_ call events, capped at the next fault.
    std::size_t end = std::min(n, i + batch_events_);
    for (std::size_t j = i; j < end; ++j) {
      if (events[j].type == EventType::kFault) {
        end = j;
        break;
      }
    }
    allocator.batch_begin();
    const SimTime batch_last = events[end - 1].time;
    for (; i < end; ++i) {
      const BEvent& ev = events[i];
      usage.advance(ev.time);
      if (telemetry_ != nullptr) telemetry_->sample(ev.time);
      ++event_count;
      BatchedLive& call = live[ev.record];

      // The switch below must stay in lockstep with replay_partition's: the
      // sim differential test compares the two engines event for event.
      switch (ev.type) {
        case EventType::kStart: {
          call.dc = allocator.on_call_start(ev.call, ev.loc, ev.time);
          call.media = ev.media;
          arena[call.legs_base] = ev.loc;
          call.legs_count = 1;
          call.active = true;
          usage.add_leg(call.dc, call.media, ev.loc, +1.0);
          ++out.calls;
          if (log_hosting) {
            out.hosting.push_back({ev.record, ev.time,
                                   HostingEvent::Kind::kStart, call.dc,
                                   ServerId()});
          }
          if (ev.majority_first) ++out.majority_first;
          ++concurrent;
          out.peak_concurrent = std::max(out.peak_concurrent, concurrent);
          break;
        }
        case EventType::kLegJoin: {
          if (!call.active) break;  // leg joined after the call ended
          arena[call.legs_base + call.legs_count] = ev.loc;
          ++call.legs_count;
          usage.add_leg(call.dc, call.media, ev.loc, +1.0);
          break;
        }
        case EventType::kMediaChange: {
          if (!call.active) break;
          const LocationId* legs = arena.data() + call.legs_base;
          usage.add_legs(call.dc, call.media, legs, call.legs_count, -1.0);
          call.media = ev.media;
          usage.add_legs(call.dc, call.media, legs, call.legs_count, +1.0);
          break;
        }
        case EventType::kFreeze: {
          if (!call.active) break;
          ++out.frozen;
          const FreezeResult result = allocator.on_config_frozen(
              ev.call, config_ids[ev.record], *configs[ev.record], ev.time);
          if (result.server.valid()) {
            call.server = result.server;
            usage.add_server(call.server, +footprints[ev.record]);
          }
          if (result.migrated) {
            ++out.migrations;
            const LocationId* legs = arena.data() + call.legs_base;
            usage.add_legs(call.dc, call.media, legs, call.legs_count, -1.0);
            call.dc = result.dc;
            usage.add_legs(call.dc, call.media, legs, call.legs_count, +1.0);
            if (log_hosting) {
              out.hosting.push_back({ev.record, ev.time,
                                     HostingEvent::Kind::kMove, call.dc,
                                     call.server});
            }
          } else if (result.server.valid() && log_hosting) {
            out.hosting.push_back({ev.record, ev.time,
                                   HostingEvent::Kind::kPack, call.dc,
                                   call.server});
          }
          break;
        }
        case EventType::kEnd: {
          if (!call.active) break;  // dropped by a failover before its end
          usage.add_legs(call.dc, call.media, arena.data() + call.legs_base,
                         call.legs_count, -1.0);
          if (call.server.valid()) {
            usage.add_server(call.server, -footprints[ev.record]);
          }
          call.active = false;
          if (log_hosting) {
            out.hosting.push_back({ev.record, ev.time,
                                   HostingEvent::Kind::kEnd, DcId(),
                                   ServerId()});
          }
          allocator.on_call_end(ev.call, ev.time);
          const double final_acl_ms =
              acl_ms(*configs[ev.record], call.dc, *ctx_.latency);
          out.acl_sum += final_acl_ms;
          acl_deferred.push_back(final_acl_ms);
          --concurrent;
          break;
        }
        case EventType::kFault:
          break;  // unreachable: batches never span a fault
      }
    }
    allocator.batch_end(batch_last);
  }
  for (double v : acl_deferred) metrics_.acl_ms.record(v);
  out.dc_peaks = usage.dc_peaks();
  out.link_peaks = usage.link_peaks();
  out.server_peaks = usage.server_peaks();
  out.dc_buckets = usage.take_dc_buckets();
  span.attr(obs::AttrKey::kEvents, static_cast<std::int64_t>(event_count));
}

SimReport Simulator::finalize(const CallRecordDatabase& /*db*/,
                              CallAllocator& allocator, const Partial& total,
                              double bucket_s, bool bucket_peaks) const {
  SimReport report;
  report.allocator = allocator.name();
  report.calls = total.calls;
  report.frozen = total.frozen;
  report.migrations = total.migrations;
  report.peak_concurrent_calls = total.peak_concurrent;
  report.failover_migrations = total.failover_migrations;
  report.dropped_calls = total.dropped;
  report.migration_fraction =
      report.calls == 0
          ? 0.0
          : static_cast<double>(report.migrations) /
                static_cast<double>(report.calls);
  report.mean_acl_ms =
      report.calls == 0 ? 0.0
                        : total.acl_sum / static_cast<double>(report.calls);
  report.first_joiner_majority_fraction =
      report.calls == 0
          ? 0.0
          : static_cast<double>(total.majority_first) /
                static_cast<double>(report.calls);
  report.dc_cores_buckets = total.dc_buckets;
  report.bucket_s = bucket_s;

  metrics_.calls.inc(report.calls);
  metrics_.frozen.inc(report.frozen);
  metrics_.migrations.inc(report.migrations);
  // One pass copies the realized peaks into the report and raises the
  // process-wide peak gauges (handles resolved at construction; no per-run
  // name lookups or second accounting loop).
  if (bucket_peaks) {
    // Concurrent driver: the time-aligned bucket maximum, exact at bucket
    // granularity (the summed per-partition continuous peaks in
    // total.dc_peaks are only an upper bound).
    report.dc_peak_cores.resize(total.dc_buckets.size(), 0.0);
    for (std::size_t x = 0; x < total.dc_buckets.size(); ++x) {
      report.dc_peak_cores[x] = report.dc_bucket_peak(x);
    }
  } else {
    report.dc_peak_cores = total.dc_peaks;
  }
  for (std::size_t x = 0; x < report.dc_peak_cores.size(); ++x) {
    metrics_.dc_peak_cores[x]->max_of(report.dc_peak_cores[x]);
  }
  report.link_peak_gbps = total.link_peaks;
  report.server_peak_cores = total.server_peaks;
  metrics_.peak_concurrent_calls.max_of(
      static_cast<double>(report.peak_concurrent_calls));
  return report;
}

SimReport Simulator::run(const CallRecordDatabase& db, CallAllocator& allocator,
                         double freeze_delay_s,
                         const fault::FaultSchedule* faults,
                         double bucket_s, HostingLog* hosting_log) const {
  require(freeze_delay_s > 0.0, "Simulator::run: freeze delay");
  require(bucket_s > 0.0, "Simulator::run: bucket width");
  obs::ScopedTimer run_timer(metrics_.run_s);
  obs::Span span("sim.run", obs::Subsystem::kSim);
  Partial total;
  const std::vector<std::uint8_t> all(db.records().size(), 1);
  const bool log_hosting = hosting_log != nullptr;
  std::unique_ptr<FaultRuntime> runtime;
  if (faults != nullptr && !faults->empty()) {
    runtime = std::make_unique<FaultRuntime>(*faults, 1);
  }
  if (engine_ == Engine::kReference) {
    replay_partition(db, allocator, freeze_delay_s, all, total, runtime.get(),
                     bucket_s, log_hosting, 0, span.id());
  } else {
    replay_partition_batched(db, allocator, freeze_delay_s, all, total,
                             runtime.get(), bucket_s, log_hosting, 0,
                             span.id());
  }
  if (hosting_log != nullptr) hosting_log->events = std::move(total.hosting);
  return finalize(db, allocator, total, bucket_s, /*bucket_peaks=*/false);
}

SimReport Simulator::run_concurrent(const CallRecordDatabase& db,
                                    CallAllocator& allocator,
                                    double freeze_delay_s, std::size_t threads,
                                    const fault::FaultSchedule* faults,
                                    double bucket_s,
                                    HostingLog* hosting_log) const {
  require(freeze_delay_s > 0.0, "Simulator::run_concurrent: freeze delay");
  require(bucket_s > 0.0, "Simulator::run_concurrent: bucket width");
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  obs::ScopedTimer run_timer(metrics_.run_s);
  obs::Span span("sim.run_concurrent", obs::Subsystem::kSim);
  const auto& records = db.records();

  // Partition by call shard: every event of a call replays on one thread,
  // which preserves per-call ordering (start < freeze < end) and gives the
  // controller's KV writes per-key last-writer-wins for free.
  std::vector<std::vector<std::uint8_t>> mine(
      threads, std::vector<std::uint8_t>(records.size(), 0));
  for (std::size_t r = 0; r < records.size(); ++r) {
    mine[records[r].id.value() % threads][r] = 1;
  }

  // The fault rendezvous needs every partition live at once: the pool below
  // has exactly `threads` workers for `threads` partition tasks, so all
  // parties can reach each fault barrier.
  std::unique_ptr<FaultRuntime> runtime;
  if (faults != nullptr && !faults->empty()) {
    runtime = std::make_unique<FaultRuntime>(*faults, threads);
  }

  ThreadPool pool(threads);
  std::vector<std::future<Partial>> futures;
  futures.reserve(threads);
  const bool log_hosting = hosting_log != nullptr;
  const std::uint64_t root_span = span.id();
  for (std::size_t p = 0; p < threads; ++p) {
    futures.push_back(pool.submit([this, &db, &allocator, freeze_delay_s,
                                   part = &mine[p], rt = runtime.get(),
                                   bucket_s, log_hosting, p, root_span] {
      Partial out;
      if (engine_ == Engine::kReference) {
        replay_partition(db, allocator, freeze_delay_s, *part, out, rt,
                         bucket_s, log_hosting, p, root_span);
      } else {
        replay_partition_batched(db, allocator, freeze_delay_s, *part, out, rt,
                                 bucket_s, log_hosting, p, root_span);
      }
      return out;
    }));
  }
  Partial total;
  for (auto& f : futures) {
    Partial part = f.get();
    total.merge(part);
  }
  if (hosting_log != nullptr) hosting_log->events = std::move(total.hosting);
  return finalize(db, allocator, total, bucket_s, /*bucket_peaks=*/true);
}

}  // namespace sb
