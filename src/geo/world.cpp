#include "geo/world.h"

#include <cmath>
#include <numbers>

namespace sb {

LocationId World::add_location(Location loc) {
  require(!loc.name.empty(), "add_location: name required");
  require(!find_location(loc.name), "add_location: duplicate name " + loc.name);
  require(loc.population_weight >= 0.0,
          "add_location: population weight must be non-negative");
  locations_.push_back(std::move(loc));
  return LocationId(static_cast<std::uint32_t>(locations_.size() - 1));
}

DcId World::add_datacenter(Datacenter dc) {
  require(!dc.name.empty(), "add_datacenter: name required");
  require(!find_datacenter(dc.name),
          "add_datacenter: duplicate name " + dc.name);
  require(dc.location.valid() && dc.location.value() < locations_.size(),
          "add_datacenter: unknown location");
  require(dc.core_cost > 0.0, "add_datacenter: core cost must be positive");
  dcs_.push_back(std::move(dc));
  return DcId(static_cast<std::uint32_t>(dcs_.size() - 1));
}

const Location& World::location(LocationId id) const {
  require(id.valid() && id.value() < locations_.size(),
          "location: id out of range");
  return locations_[id.value()];
}

const Datacenter& World::datacenter(DcId id) const {
  require(id.valid() && id.value() < dcs_.size(), "datacenter: id out of range");
  return dcs_[id.value()];
}

std::optional<LocationId> World::find_location(const std::string& name) const {
  for (std::size_t i = 0; i < locations_.size(); ++i) {
    if (locations_[i].name == name) {
      return LocationId(static_cast<std::uint32_t>(i));
    }
  }
  return std::nullopt;
}

std::optional<DcId> World::find_datacenter(const std::string& name) const {
  for (std::size_t i = 0; i < dcs_.size(); ++i) {
    if (dcs_[i].name == name) return DcId(static_cast<std::uint32_t>(i));
  }
  return std::nullopt;
}

std::vector<DcId> World::dcs_in_region(const std::string& region) const {
  std::vector<DcId> result;
  for (std::size_t i = 0; i < dcs_.size(); ++i) {
    if (locations_[dcs_[i].location.value()].region == region) {
      result.push_back(DcId(static_cast<std::uint32_t>(i)));
    }
  }
  return result;
}

const std::string& World::dc_region(DcId id) const {
  return location(datacenter(id).location).region;
}

std::vector<LocationId> World::location_ids() const {
  std::vector<LocationId> ids;
  ids.reserve(locations_.size());
  for (std::size_t i = 0; i < locations_.size(); ++i) {
    ids.push_back(LocationId(static_cast<std::uint32_t>(i)));
  }
  return ids;
}

std::vector<DcId> World::dc_ids() const {
  std::vector<DcId> ids;
  ids.reserve(dcs_.size());
  for (std::size_t i = 0; i < dcs_.size(); ++i) {
    ids.push_back(DcId(static_cast<std::uint32_t>(i)));
  }
  return ids;
}

double geo_distance_km(double lat1_deg, double lon1_deg, double lat2_deg,
                       double lon2_deg) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = std::numbers::pi / 180.0;
  const double lat1 = lat1_deg * kDegToRad;
  const double lat2 = lat2_deg * kDegToRad;
  const double dlat = (lat2_deg - lat1_deg) * kDegToRad;
  const double dlon = (lon2_deg - lon1_deg) * kDegToRad;
  const double a = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(a)));
}

}  // namespace sb
