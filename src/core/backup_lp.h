// The §3.2 backup-capacity LP (Eq 1-2): given per-DC serving capacity,
// provision the minimum total backup so that any single DC's serving load
// fits into the other DCs' backup. Used by the Locality-First baseline and
// by the "peak-aware off" ablation (Fig 4b's "default backup plan").
#pragma once

#include <vector>

namespace sb {

/// Minimizes sum_x Backup_x subject to Serving_x <= sum_{y != x} Backup_y
/// for every DC x (Eq 1-2). Returns the per-DC backup vector. With a single
/// DC the problem is infeasible unless its serving capacity is zero; this
/// throws SolveError in that case.
std::vector<double> solve_backup_lp(const std::vector<double>& serving_cores);

}  // namespace sb
