// Aligned text-table rendering for the benchmark harness. Every bench binary
// reproduces one of the paper's tables/figures as rows on stdout; this
// printer keeps their output uniform and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sb {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with a fixed precision so normalized results line up.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls append to it.
  TextTable& row();

  TextTable& cell(const std::string& text);
  TextTable& cell(double value, int precision = 2);
  TextTable& cell(std::int64_t value);
  TextTable& cell(std::uint64_t value);

  /// Renders with a header underline and two-space column gaps.
  [[nodiscard]] std::string str() const;

  /// Convenience: writes str() to the stream.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with the given precision (std::fixed).
std::string format_double(double value, int precision = 2);

/// Prints a section banner ("== title ==") used between experiment blocks.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace sb
