#include "core/realtime.h"

#include <algorithm>

#include "calls/acl.h"
#include "common/error.h"
#include "obs/span.h"

namespace sb {

RealtimeSelector::RealtimeSelector(EvalContext ctx, const AllocationPlan* plan,
                                   RealtimeOptions options,
                                   SimTime plan_start_s,
                                   const fault::HealthTable* health)
    : ctx_(ctx),
      plan_(plan),
      options_(options),
      plan_start_s_(plan_start_s),
      shard_count_(std::max<std::size_t>(options.shard_count, 1)),
      health_(health) {
  require(ctx_.world && ctx_.latency && ctx_.registry,
          "RealtimeSelector: incomplete context");
  all_dcs_ = ctx_.world->dc_ids();
  require(!all_dcs_.empty(), "RealtimeSelector: world has no DCs");
  closest_dc_.reserve(ctx_.world->location_count());
  for (std::size_t loc = 0; loc < ctx_.world->location_count(); ++loc) {
    closest_dc_.push_back(ctx_.latency->closest_dc(
        LocationId(static_cast<std::uint32_t>(loc)), all_dcs_));
  }
  shards_ = std::make_unique<CallShard[]>(shard_count_);
  stats_ = std::make_unique<ShardStats[]>(shard_count_);
  if (plan_) {
    const std::size_t cells = plan_->config_count() * plan_->dc_count();
    usage_ = std::make_unique<std::atomic<std::uint32_t>[]>(cells);
    for (std::size_t i = 0; i < cells; ++i) {
      usage_[i].store(0, std::memory_order_relaxed);
    }
  }
  dc_cores_ = std::make_unique<std::atomic<double>[]>(all_dcs_.size());
  for (std::size_t x = 0; x < all_dcs_.size(); ++x) {
    dc_cores_[x].store(0.0, std::memory_order_relaxed);
  }
  if (ctx_.world->server_count() > 0) {
    for (DcId dc : all_dcs_) {
      require(!ctx_.world->servers_in_dc(dc).empty(),
              "RealtimeSelector: fleet must cover every DC");
    }
    // The health table only covers servers when its owner sized it for this
    // world; a mismatched table (e.g. a pre-fleet controller) is ignored.
    const fault::HealthTable* server_health =
        health_ != nullptr &&
                health_->server_count() == ctx_.world->server_count()
            ? health_
            : nullptr;
    packer_ = std::make_unique<pack::ServerPacker>(*ctx_.world, options_.pack,
                                                   server_health);
  }
}

bool RealtimeSelector::try_debit(std::size_t col, DcId dc,
                                 std::uint32_t quota,
                                 std::uint32_t* retries) {
  std::atomic<std::uint32_t>& u = usage(col, dc);
  std::uint32_t cur = u.load(std::memory_order_relaxed);
  while (cur < quota) {
    if (u.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel,
                                std::memory_order_relaxed)) {
      return true;
    }
    if (retries != nullptr) ++*retries;
  }
  return false;
}

void RealtimeSelector::add_cores(DcId dc, double cores) {
  if (cores != 0.0) {
    dc_cores_[dc.value()].fetch_add(cores, std::memory_order_relaxed);
  }
}

ServerId RealtimeSelector::pack_admit(DcId dc, double cores,
                                      std::uint32_t* retries) {
  if (!packer_) return ServerId();
  return packer_->admit(dc, cores, ServerId(), retries);
}

double RealtimeSelector::dc_cores_used(DcId dc) const {
  return dc_cores_[dc.value()].load(std::memory_order_relaxed);
}

bool RealtimeSelector::within_budget(DcId dc, double cores,
                                     const std::vector<double>& budget) const {
  if (budget.empty()) return true;
  return dc_cores_used(dc) + cores <= budget[dc.value()] + 1e-9;
}

DcId RealtimeSelector::closest_available_dc(LocationId joiner) const {
  // Candidates: up DCs reachable without traversing a down link (§5.3 keeps
  // paths fixed, so a placement over a failed link is simply forbidden).
  std::vector<DcId> candidates;
  candidates.reserve(all_dcs_.size());
  const bool check_links =
      ctx_.topology != nullptr && ctx_.topology->link_count() > 0;
  for (DcId dc : all_dcs_) {
    if (!health_->dc_up(dc)) continue;
    if (check_links) {
      const LocationId dc_loc = ctx_.world->datacenter(dc).location;
      bool path_ok = true;
      for (LinkId l : ctx_.topology->path(dc_loc, joiner)) {
        if (!health_->link_up(l)) {
          path_ok = false;
          break;
        }
      }
      if (!path_ok) continue;
    }
    candidates.push_back(dc);
  }
  if (candidates.empty()) {
    // Every link-clean DC is gone: relax the path constraint.
    for (DcId dc : all_dcs_) {
      if (health_->dc_up(dc)) candidates.push_back(dc);
    }
  }
  if (candidates.empty()) {
    // Everything is down: fail open to the undegraded heuristic rather
    // than refuse service.
    return ctx_.latency->closest_dc(joiner, all_dcs_);
  }
  return ctx_.latency->closest_dc(joiner, candidates);
}

DcId RealtimeSelector::on_call_start(CallId call, LocationId first_joiner,
                                     SimTime now) {
  obs::Span span("sel.admit", obs::Subsystem::kRealtime, now);
  span.attr(obs::AttrKey::kCallId,
            static_cast<std::int64_t>(call.value()));
  span.attr(obs::AttrKey::kShard,
            static_cast<std::int64_t>(shard_of(call, shard_count_)));
  // closest_dc only reads the immutable latency matrix (and, when degraded,
  // the lock-free health table), so it runs before the stripe lock is taken.
  const DcId dc = degraded() ? closest_available_dc(first_joiner)
                  : first_joiner.valid() &&
                          first_joiner.value() < closest_dc_.size()
                      ? closest_dc_[first_joiner.value()]
                      : ctx_.latency->closest_dc(first_joiner, all_dcs_);
  span.attr(obs::AttrKey::kDc, static_cast<std::int64_t>(dc.value()));
  CallShard& s = shard(call);
  {
    std::lock_guard lock(s.mutex);
    const auto [it, inserted] =
        s.calls.emplace(call,
                        ActiveCall{dc, first_joiner, AllocationPlan::npos,
                                   false, DcId(), 0.0, ServerId()});
    require(inserted, "on_call_start: duplicate call id");
  }
  shard_stats(call).calls_started.fetch_add(1, std::memory_order_relaxed);
  return dc;
}

FreezeResult RealtimeSelector::on_config_frozen(CallId call,
                                                const CallConfig& config,
                                                SimTime now, ConfigId id_hint) {
  obs::Span span("sel.freeze", obs::Subsystem::kRealtime, now);
  span.attr(obs::AttrKey::kCallId,
            static_cast<std::int64_t>(call.value()));
  span.attr(obs::AttrKey::kShard,
            static_cast<std::int64_t>(shard_of(call, shard_count_)));
  std::uint32_t cas_retries = 0;
  CallShard& s = shard(call);
  ShardStats& stat = shard_stats(call);
  std::lock_guard lock(s.mutex);
  const auto it = s.calls.find(call);
  require(it != s.calls.end(), "on_config_frozen: unknown call");
  ActiveCall& state = it->second;
  stat.calls_frozen.fetch_add(1, std::memory_order_relaxed);

  const ConfigId id = id_hint.valid() ? id_hint : ctx_.registry->find(config);
  const std::size_t col =
      plan_ && id.valid() ? plan_->column_of(id) : AllocationPlan::npos;
  const double call_cores =
      ctx_.loads == nullptr
          ? 0.0
          : config.total_participants() *
                ctx_.loads->cores_per_participant(config.media());
  const bool faulted = degraded();

  FreezeResult result{state.dc, false, col != AllocationPlan::npos,
                      ServerId()};
  if (!result.planned) {
    // §5.4: unanticipated config -> its closest (min ACL) DC, restricted to
    // surviving DCs while a fault is active.
    stat.unplanned.fetch_add(1, std::memory_order_relaxed);
    DcId target;
    if (faulted) {
      std::vector<DcId> up;
      up.reserve(all_dcs_.size());
      for (DcId dc : all_dcs_) {
        if (health_->dc_up(dc)) up.push_back(dc);
      }
      target = min_acl_dc(config, up.empty() ? all_dcs_ : up, *ctx_.latency);
    } else {
      target = min_acl_dc(config, all_dcs_, *ctx_.latency);
    }
    result.migrated = target != state.dc;
    if (result.migrated) {
      stat.migrations.fetch_add(1, std::memory_order_relaxed);
    }
    state.dc = target;
    state.cores = call_cores;
    add_cores(target, call_cores);
    result.dc = target;
    state.server = pack_admit(target, call_cores, &cas_retries);
    result.server = state.server;
    span.attr(obs::AttrKey::kDc, static_cast<std::int64_t>(target.value()));
    if (state.server.valid()) {
      span.attr(obs::AttrKey::kServer,
                static_cast<std::int64_t>(state.server.value()));
    }
    return result;
  }

  const TimeSlot slot = plan_->slot_at(now - plan_start_s_);
  if ((!faulted || dc_ok(state.dc)) &&
      try_debit(col, state.dc, plan_->quota(slot, col, state.dc),
                &cas_retries)) {
    // Initial heuristic matched the plan: just debit (§5.4b).
    stat.slot_debits.fetch_add(1, std::memory_order_relaxed);
    state.plan_col = col;
    state.holds_slot = true;
    state.slot_dc = state.dc;
    state.cores = call_cores;
    add_cores(state.dc, call_cores);
    state.server = pack_admit(state.dc, call_cores, &cas_retries);
    result.server = state.server;
    span.attr(obs::AttrKey::kDc, static_cast<std::int64_t>(state.dc.value()));
    span.attr(obs::AttrKey::kCasRetries, cas_retries);
    return result;
  }
  // Migrate to the planned DC with spare quota and the lowest ACL (§5.4c).
  // Another thread can drain a candidate between the scan and our debit, so
  // retry the scan until a debit lands or every quota reads exhausted; the
  // CAS keeps accounting exact either way.
  DcId best;
  for (;;) {
    best = DcId();
    double best_acl = 0.0;
    for (DcId dc : all_dcs_) {
      if (faulted && !dc_ok(dc)) continue;
      if (usage(col, dc).load(std::memory_order_relaxed) >=
          plan_->quota(slot, col, dc)) {
        continue;
      }
      const double a = acl_ms(config, dc, *ctx_.latency);
      if (!best.valid() || a < best_acl) {
        best = dc;
        best_acl = a;
      }
    }
    if (!best.valid()) {
      // All quotas exhausted (plan under-estimated this config's
      // concurrency): stay put rather than thrash; provisioning cushions
      // make this rare. If the current host is down (a freeze racing a DC
      // failure), re-home to the closest surviving DC instead of staying
      // on a dead one.
      stat.overflow.fetch_add(1, std::memory_order_relaxed);
      if (faulted && !dc_ok(state.dc)) {
        const DcId target = closest_available_dc(state.first_joiner);
        if (target != state.dc) {
          stat.migrations.fetch_add(1, std::memory_order_relaxed);
          result.migrated = true;
          state.dc = target;
          result.dc = target;
        }
      }
      // Remember the column even without a slot: every decision path gates
      // on holds_slot, and rebind_plan() uses it to upgrade overflow calls
      // when a re-plan raises this config's quota.
      state.plan_col = col;
      state.cores = call_cores;
      add_cores(state.dc, call_cores);
      state.server = pack_admit(state.dc, call_cores, &cas_retries);
      result.server = state.server;
      span.attr(obs::AttrKey::kDc,
                static_cast<std::int64_t>(state.dc.value()));
      span.attr(obs::AttrKey::kCasRetries, cas_retries);
      return result;
    }
    if (try_debit(col, best, plan_->quota(slot, col, best), &cas_retries)) {
      break;
    }
    // Lost the scan-to-debit race outright: the rescan is itself a retry.
    ++cas_retries;
  }
  stat.slot_debits.fetch_add(1, std::memory_order_relaxed);
  state.plan_col = col;
  state.holds_slot = true;
  state.slot_dc = best;
  if (best != state.dc) {
    stat.migrations.fetch_add(1, std::memory_order_relaxed);
    result.migrated = true;
    state.dc = best;
    result.dc = best;
  }
  state.cores = call_cores;
  add_cores(state.dc, call_cores);
  state.server = pack_admit(state.dc, call_cores, &cas_retries);
  result.server = state.server;
  span.attr(obs::AttrKey::kDc, static_cast<std::int64_t>(state.dc.value()));
  span.attr(obs::AttrKey::kCasRetries, cas_retries);
  return result;
}

void RealtimeSelector::on_call_end(CallId call, SimTime now) {
  obs::Span span("sel.end", obs::Subsystem::kRealtime, now);
  span.attr(obs::AttrKey::kCallId,
            static_cast<std::int64_t>(call.value()));
  CallShard& s = shard(call);
  std::lock_guard lock(s.mutex);
  const auto it = s.calls.find(call);
  require(it != s.calls.end(), "on_call_end: unknown call");
  const ActiveCall& state = it->second;
  if (state.holds_slot) {
    // Debits and credits pair exactly (holds_slot is set only after a
    // successful CAS debit), so the counter cannot underflow. The credited
    // cell is slot_dc, which tracks the accounting DC even when the call
    // was re-homed onto backup capacity during a failover.
    usage(state.plan_col, state.slot_dc).fetch_sub(1, std::memory_order_acq_rel);
    shard_stats(call).slot_credits.fetch_add(1, std::memory_order_relaxed);
  }
  span.attr(obs::AttrKey::kDc, static_cast<std::int64_t>(state.dc.value()));
  add_cores(state.dc, -state.cores);
  if (packer_ && state.server.valid()) {
    packer_->release(state.server, state.cores);
  }
  s.calls.erase(it);
}

void RealtimeSelector::drop_call(CallId call, ActiveCall& state,
                                 fault::FailoverOutcome& out) {
  if (state.holds_slot) {
    // Credit the slot so the quota table stays conserved; the caller erases
    // the call state.
    usage(state.plan_col, state.slot_dc)
        .fetch_sub(1, std::memory_order_acq_rel);
    shard_stats(call).slot_credits.fetch_add(1, std::memory_order_relaxed);
  }
  add_cores(state.dc, -state.cores);
  if (packer_ && state.server.valid()) {
    packer_->release(state.server, state.cores);
  }
  out.dropped.push_back(call);
}

bool RealtimeSelector::rehome_move(CallId call, ActiveCall& state,
                                   DcId failed, SimTime now,
                                   const std::vector<double>& budget,
                                   fault::FailoverOutcome& out) {
  obs::Span span("sel.rehome", obs::Subsystem::kDrain, now);
  span.attr(obs::AttrKey::kCallId,
            static_cast<std::int64_t>(call.value()));
  span.attr(obs::AttrKey::kFromDc,
            static_cast<std::int64_t>(state.dc.value()));
  // Moving a packed call re-packs it at the destination DC and releases the
  // vacated server (the chaos knob leaks that release on purpose — see
  // RealtimeOptions::chaos_skip_server_credit).
  const auto repack_at = [&](DcId to) -> ServerId {
    if (!packer_ || !state.server.valid()) return ServerId();
    const ServerId to_server = packer_->admit(to, state.cores);
    if (!options_.chaos_skip_server_credit) {
      packer_->release(state.server, state.cores);
    }
    return to_server;
  };
  if (state.holds_slot) {
    // Tier 1: another planned DC with spare quota, min ACL — the same scan
    // the freeze path runs, minus the failed/down DCs.
    const CallConfig& config =
        ctx_.registry->get(plan_->config_columns[state.plan_col]);
    const TimeSlot slot = plan_->slot_at(now - plan_start_s_);
    for (;;) {
      DcId best;
      double best_acl = 0.0;
      for (DcId dc : all_dcs_) {
        if (dc == failed || !dc_ok(dc)) continue;
        if (!within_budget(dc, state.cores, budget)) continue;
        if (usage(state.plan_col, dc).load(std::memory_order_relaxed) >=
            plan_->quota(slot, state.plan_col, dc)) {
          continue;
        }
        const double a = acl_ms(config, dc, *ctx_.latency);
        if (!best.valid() || a < best_acl) {
          best = dc;
          best_acl = a;
        }
      }
      if (!best.valid()) break;
      if (!try_debit(state.plan_col, best,
                     plan_->quota(slot, state.plan_col, best))) {
        continue;  // lost the race for the last slot; rescan
      }
      if (!options_.chaos_skip_drain_credit) {
        usage(state.plan_col, state.slot_dc)
            .fetch_sub(1, std::memory_order_acq_rel);
      }
      const ServerId to_server = repack_at(best);
      out.moved.push_back({call, state.dc, best, to_server});
      add_cores(state.dc, -state.cores);
      add_cores(best, state.cores);
      state.slot_dc = best;
      state.dc = best;
      state.server = to_server;
      span.attr(obs::AttrKey::kDrainTier, 1);
      span.attr(obs::AttrKey::kDc, static_cast<std::int64_t>(best.value()));
      return true;
    }
    // Tier 2: provisioned backup. The call keeps its original slot
    // accounting (the failed DC's planned share is exactly what the §5.3
    // backup guarantee covers) and is hosted wherever the budget still has
    // room, min ACL first.
    DcId backup;
    double backup_acl = 0.0;
    for (DcId dc : all_dcs_) {
      if (!dc_ok(dc) || dc == failed) continue;
      if (!within_budget(dc, state.cores, budget)) continue;
      const double a = acl_ms(config, dc, *ctx_.latency);
      if (!backup.valid() || a < backup_acl) {
        backup = dc;
        backup_acl = a;
      }
    }
    if (backup.valid()) {
      const ServerId to_server = repack_at(backup);
      out.moved.push_back({call, state.dc, backup, to_server});
      add_cores(state.dc, -state.cores);
      add_cores(backup, state.cores);
      state.dc = backup;
      state.server = to_server;
      span.attr(obs::AttrKey::kDrainTier, 2);
      span.attr(obs::AttrKey::kDc, static_cast<std::int64_t>(backup.value()));
      return true;
    }
    // Backup truly exhausted: the caller picks the next tier (server
    // overflow for a server drain, drop_call for a DC drain).
    span.attr(obs::AttrKey::kDrainTier, 3);
    return false;
  }

  // No slot held: an unfrozen call (config unknown, load untracked) or a
  // frozen unplanned/overflow call. Re-run the start heuristic over the
  // surviving DCs; capacity-check only calls with known load.
  DcId target;
  double target_ms = 0.0;
  for (DcId dc : all_dcs_) {
    if (!dc_ok(dc) || dc == failed) continue;
    if (state.cores > 0.0 && !within_budget(dc, state.cores, budget)) continue;
    const double ms = ctx_.latency->latency_ms(dc, state.first_joiner);
    if (!target.valid() || ms < target_ms) {
      target = dc;
      target_ms = ms;
    }
  }
  if (target.valid()) {
    const ServerId to_server = repack_at(target);
    out.moved.push_back({call, state.dc, target, to_server});
    add_cores(state.dc, -state.cores);
    add_cores(target, state.cores);
    state.dc = target;
    state.server = to_server;
    // Tier 0: slotless call re-ran the closest-DC heuristic (no quota moved).
    span.attr(obs::AttrKey::kDrainTier, 0);
    span.attr(obs::AttrKey::kDc, static_cast<std::int64_t>(target.value()));
    return true;
  }
  // Unfrozen and every DC down, or a frozen slotless call over every budget:
  // nothing can host it.
  span.attr(obs::AttrKey::kDrainTier, 3);
  return false;
}

fault::FailoverOutcome RealtimeSelector::drain_dc(
    DcId failed, SimTime now, const std::vector<double>& budget_cores,
    std::size_t batch_size) {
  require(failed.valid() && failed.value() < all_dcs_.size(),
          "drain_dc: bad DC id");
  require(budget_cores.empty() || budget_cores.size() == all_dcs_.size(),
          "drain_dc: budget shape");
  const std::size_t batch = std::max<std::size_t>(batch_size, 1);
  obs::Span span("sel.drain_dc", obs::Subsystem::kDrain, now);
  span.attr(obs::AttrKey::kDc, static_cast<std::int64_t>(failed.value()));
  fault::FailoverOutcome out;
  std::vector<CallId> pending;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    CallShard& s = shards_[i];
    pending.clear();
    {
      // One cheap pass collects the victims; re-homing then proceeds in
      // bounded batches so concurrent events on this shard interleave.
      std::lock_guard lock(s.mutex);
      for (const auto& [id, state] : s.calls) {
        if (state.dc == failed) pending.push_back(id);
      }
    }
    std::size_t next = 0;
    while (next < pending.size()) {
      std::lock_guard lock(s.mutex);
      const std::size_t stop = std::min(pending.size(), next + batch);
      for (; next < stop; ++next) {
        const auto it = s.calls.find(pending[next]);
        // The call may have ended (or re-frozen elsewhere) between the scan
        // and this batch; skip anything no longer hosted on the failed DC.
        if (it == s.calls.end() || it->second.dc != failed) continue;
        if (rehome_move(pending[next], it->second, failed, now, budget_cores,
                        out)) {
          stats_[i].failover_moves.fetch_add(1, std::memory_order_relaxed);
        } else {
          drop_call(pending[next], it->second, out);
          stats_[i].failover_drops.fetch_add(1, std::memory_order_relaxed);
          s.calls.erase(it);
        }
      }
    }
  }
  span.attr(obs::AttrKey::kMoved,
            static_cast<std::int64_t>(out.moved.size()));
  span.attr(obs::AttrKey::kDropped,
            static_cast<std::int64_t>(out.dropped.size()));
  return out;
}

fault::FailoverOutcome RealtimeSelector::drain_server(
    ServerId failed, SimTime now, const std::vector<double>& budget_cores,
    std::size_t batch_size) {
  require(packer_ != nullptr, "drain_server: world has no fleet");
  require(failed.valid() && failed.value() < ctx_.world->server_count(),
          "drain_server: bad server id");
  require(budget_cores.empty() || budget_cores.size() == all_dcs_.size(),
          "drain_server: budget shape");
  const std::size_t batch = std::max<std::size_t>(batch_size, 1);
  obs::Span span("sel.drain_server", obs::Subsystem::kDrain, now);
  span.attr(obs::AttrKey::kServer,
            static_cast<std::int64_t>(failed.value()));
  fault::FailoverOutcome out;
  std::vector<CallId> pending;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    CallShard& s = shards_[i];
    pending.clear();
    {
      std::lock_guard lock(s.mutex);
      for (const auto& [id, state] : s.calls) {
        if (state.server == failed) pending.push_back(id);
      }
    }
    std::size_t next = 0;
    while (next < pending.size()) {
      std::lock_guard lock(s.mutex);
      const std::size_t stop = std::min(pending.size(), next + batch);
      for (; next < stop; ++next) {
        const CallId call = pending[next];
        const auto it = s.calls.find(call);
        // Ended or re-packed elsewhere between the scan and this batch.
        if (it == s.calls.end() || it->second.server != failed) continue;
        ActiveCall& state = it->second;
        const DcId dc = state.dc;
        // Tier S1: bounded re-pack onto an up sibling — the DC is healthy,
        // so quota accounting is untouched; the move keeps from == to.
        const ServerId sibling =
            packer_->admit_bounded(dc, state.cores, failed);
        if (sibling.valid()) {
          if (!options_.chaos_skip_server_credit) {
            packer_->release(failed, state.cores);
          }
          state.server = sibling;
          out.moved.push_back({call, dc, dc, sibling});
          stats_[i].failover_moves.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Tiers S2/S3: the fleet cannot absorb it within bounds — spill
        // cross-DC through the quota-then-backup tiers a DC drain uses.
        if (rehome_move(call, state, dc, now, budget_cores, out)) {
          stats_[i].failover_moves.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Tier S4: before dropping in an otherwise healthy DC, overflow
        // onto the least-loaded up sibling (overcommit admit).
        const ServerId overflow =
            packer_->admit_overflow(dc, state.cores, failed, /*up_only=*/true);
        if (overflow.valid()) {
          if (!options_.chaos_skip_server_credit) {
            packer_->release(failed, state.cores);
          }
          state.server = overflow;
          out.moved.push_back({call, dc, dc, overflow});
          stats_[i].failover_moves.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Tier S5: no up sibling and every cross-DC tier exhausted.
        drop_call(call, state, out);
        stats_[i].failover_drops.fetch_add(1, std::memory_order_relaxed);
        s.calls.erase(it);
      }
    }
  }
  span.attr(obs::AttrKey::kMoved,
            static_cast<std::int64_t>(out.moved.size()));
  span.attr(obs::AttrKey::kDropped,
            static_cast<std::int64_t>(out.dropped.size()));
  return out;
}

pack::DefragResult RealtimeSelector::defragment_dc(DcId dc,
                                                   std::size_t max_moves) {
  pack::DefragResult out;
  if (!packer_) return out;
  obs::Span span("sel.defrag", obs::Subsystem::kPack);
  span.attr(obs::AttrKey::kDc, static_cast<std::int64_t>(dc.value()));
  out.fragmentation_before = packer_->fragmentation(dc);
  out.fragmentation_after = out.fragmentation_before;
  const std::vector<ServerId>& fleet = packer_->fleet(dc);
  if (fleet.size() < 2) return out;

  // Snapshot the DC's packed calls (shard by shard, no global freeze).
  struct Cand {
    CallId call;
    ServerId from;
    double cores = 0.0;
  };
  std::vector<Cand> cands;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard lock(shards_[i].mutex);
    for (const auto& [id, state] : shards_[i].calls) {
      if (state.dc == dc && state.server.valid() && state.cores > 0.0) {
        cands.push_back({id, state.server, state.cores});
      }
    }
  }
  if (cands.empty()) return out;

  // Offline best-fit-decreasing target assignment. `pinned` is the load we
  // cannot move (occupancy minus the candidates' own footprints).
  std::vector<double> pinned(fleet.size());
  std::vector<double> capacity(fleet.size());
  const auto pos_of = [&](ServerId sid) -> std::size_t {
    for (std::size_t p = 0; p < fleet.size(); ++p) {
      if (fleet[p] == sid) return p;
    }
    return fleet.size();
  };
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    pinned[p] = packer_->server_cores_used(fleet[p]);
    capacity[p] = packer_->server_capacity(fleet[p]);
  }
  for (const Cand& cand : cands) {
    const std::size_t p = pos_of(cand.from);
    if (p < fleet.size()) pinned[p] = std::max(0.0, pinned[p] - cand.cores);
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.cores != b.cores) return a.cores > b.cores;
    return a.call < b.call;
  });
  const auto server_up = [&](std::size_t p) {
    return health_ == nullptr || health_->server_count() == 0 ||
           health_->server_up(fleet[p]);
  };
  std::vector<std::size_t> target(cands.size());
  for (std::size_t c = 0; c < cands.size(); ++c) {
    std::size_t best = fleet.size();
    double best_residual = 0.0;
    for (std::size_t p = 0; p < fleet.size(); ++p) {
      if (!server_up(p)) continue;
      const double residual = capacity[p] - pinned[p] - cands[c].cores;
      if (residual < -1e-9) continue;
      if (best == fleet.size() || residual < best_residual) {
        best = p;
        best_residual = residual;
      }
    }
    if (best == fleet.size()) best = pos_of(cands[c].from);  // keep in place
    target[c] = best;
    if (best < fleet.size()) pinned[best] += cands[c].cores;
  }

  // Improvement guard: BFD minimizes per-placement residual, which on a
  // heterogeneous fleet can SHRED the free block it was meant to grow.
  // `pinned` now holds the full target occupancy, so score the target
  // offline with the same metric fragmentation() uses and bail (zero
  // moves) unless it strictly concentrates free space.
  double total_free = 0.0;
  double max_free = 0.0;
  std::size_t up_servers = 0;
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    if (!server_up(p)) continue;
    ++up_servers;
    const double free_cores = std::max(0.0, capacity[p] - pinned[p]);
    total_free += free_cores;
    max_free = std::max(max_free, free_cores);
  }
  const double target_frag = (up_servers > 1 && total_free > 0.0)
                                 ? 1.0 - max_free / total_free
                                 : 0.0;
  if (target_frag >= out.fragmentation_before - 1e-12) return out;

  // Apply, re-verifying each call against its live state under the shard
  // lock: a call that ended, moved, or re-froze since the snapshot is
  // skipped, as is a target whose capacity a concurrent admit raced away.
  for (std::size_t c = 0; c < cands.size(); ++c) {
    if (out.moves.size() >= max_moves) break;
    if (target[c] >= fleet.size() || fleet[target[c]] == cands[c].from) {
      continue;
    }
    const ServerId to = fleet[target[c]];
    CallShard& s = shard(cands[c].call);
    std::lock_guard lock(s.mutex);
    const auto it = s.calls.find(cands[c].call);
    if (it == s.calls.end() || it->second.dc != dc ||
        it->second.server != cands[c].from ||
        it->second.cores != cands[c].cores) {
      continue;
    }
    if (!packer_->try_admit_to(to, cands[c].cores)) continue;
    packer_->release(cands[c].from, cands[c].cores);
    it->second.server = to;
    out.moves.push_back({cands[c].call, cands[c].from, to});
    obs::Span move_span("pack.repack", obs::Subsystem::kPack);
    move_span.attr(obs::AttrKey::kCallId,
                   static_cast<std::int64_t>(cands[c].call.value()));
    move_span.attr(obs::AttrKey::kFromServer,
                   static_cast<std::int64_t>(cands[c].from.value()));
    move_span.attr(obs::AttrKey::kServer,
                   static_cast<std::int64_t>(to.value()));
  }
  out.fragmentation_after = packer_->fragmentation(dc);
  span.attr(obs::AttrKey::kMoved,
            static_cast<std::int64_t>(out.moves.size()));
  return out;
}

RealtimeSelector::Stats RealtimeSelector::stats() const {
  Stats out;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const ShardStats& s = stats_[i];
    out.calls_started += s.calls_started.load(std::memory_order_relaxed);
    out.calls_frozen += s.calls_frozen.load(std::memory_order_relaxed);
    out.migrations += s.migrations.load(std::memory_order_relaxed);
    out.unplanned += s.unplanned.load(std::memory_order_relaxed);
    out.overflow += s.overflow.load(std::memory_order_relaxed);
    out.slot_debits += s.slot_debits.load(std::memory_order_relaxed);
    out.slot_credits += s.slot_credits.load(std::memory_order_relaxed);
    out.failover_moves += s.failover_moves.load(std::memory_order_relaxed);
    out.failover_drops += s.failover_drops.load(std::memory_order_relaxed);
  }
  return out;
}

std::size_t RealtimeSelector::active_calls() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard lock(shards_[i].mutex);
    total += shards_[i].calls.size();
  }
  return total;
}

std::optional<RealtimeSelector::CallSnapshot> RealtimeSelector::snapshot_call(
    CallId call) const {
  const CallShard& s = shards_[shard_of(call, shard_count_)];
  std::lock_guard lock(s.mutex);
  const auto it = s.calls.find(call);
  if (it == s.calls.end()) return std::nullopt;
  const ActiveCall& state = it->second;
  return CallSnapshot{state.dc,        state.first_joiner, state.plan_col,
                      state.holds_slot, state.slot_dc,     state.cores,
                      state.server};
}

std::size_t RealtimeSelector::drop_shards(std::size_t shard_begin,
                                          std::size_t shard_end) {
  require(shard_begin <= shard_end && shard_end <= shard_count_,
          "drop_shards: bad shard range");
  std::size_t dropped = 0;
  for (std::size_t i = shard_begin; i < shard_end; ++i) {
    std::lock_guard lock(shards_[i].mutex);
    dropped += shards_[i].calls.size();
    // No credits, no core subtraction, no packer release: the media plane
    // still hosts these calls; only the controller's view is lost.
    shards_[i].calls.clear();
  }
  return dropped;
}

void RealtimeSelector::adopt_call(CallId call, const CallSnapshot& snap) {
  CallShard& s = shards_[shard_of(call, shard_count_)];
  std::lock_guard lock(s.mutex);
  const auto [it, inserted] = s.calls.emplace(
      call, ActiveCall{snap.dc, snap.first_joiner, snap.plan_col,
                       snap.holds_slot, snap.slot_dc, snap.cores,
                       snap.server});
  (void)it;
  require(inserted, "adopt_call: duplicate call id (replay must be "
                    "exactly-once)");
}

void RealtimeSelector::rebind_plan(const AllocationPlan& old_plan,
                                   const AllocationPlan* new_plan,
                                   SimTime plan_start_s, SimTime now) {
  require(new_plan != nullptr, "rebind_plan: null plan");
  require(plan_ != nullptr, "rebind_plan: selector has no plan to replace");
  obs::Span span("sel.rebind", obs::Subsystem::kRealtime, now);
  plan_ = new_plan;
  plan_start_s_ = plan_start_s;
  // Fresh zeroed quota table for the new plan's (config, dc) shape; live
  // calls re-debit it below, so the table never mixes the two plans' cells.
  const std::size_t cells = new_plan->config_count() * new_plan->dc_count();
  usage_ = std::make_unique<std::atomic<std::uint32_t>[]>(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    usage_[i].store(0, std::memory_order_relaxed);
  }
  const TimeSlot slot = new_plan->slot_at(now - plan_start_s_);
  std::int64_t carried = 0;
  std::int64_t demoted = 0;
  std::int64_t upgraded = 0;
  // The caller holds the controller's swap lock exclusively, so no event is
  // in flight; the shard locks are taken anyway (uncontended) to keep the
  // call tables' locking discipline uniform.
  for (std::size_t i = 0; i < shard_count_; ++i) {
    CallShard& s = shards_[i];
    std::lock_guard lock(s.mutex);
    for (auto& [id, state] : s.calls) {
      if (state.plan_col == AllocationPlan::npos) continue;  // unfrozen/unplanned
      const ConfigId cfg = old_plan.config_columns[state.plan_col];
      const std::size_t col = new_plan->column_of(cfg);
      if (col == AllocationPlan::npos) {
        // Config lost its column: the call becomes unplanned. A held slot is
        // credited in the stats (the new table never held it), keeping
        // held_slots() == slot_debits - slot_credits exact.
        if (state.holds_slot) {
          stats_[i].slot_credits.fetch_add(1, std::memory_order_relaxed);
          state.holds_slot = false;
          state.slot_dc = DcId();
          ++demoted;
        }
        state.plan_col = AllocationPlan::npos;
        continue;
      }
      if (state.holds_slot) {
        // Carry the slot into the new plan at the same accounting DC when
        // its quota has room; otherwise the call drops to overflow
        // accounting (stays hosted where it is — calls never move here).
        if (try_debit(col, state.slot_dc,
                      new_plan->quota(slot, col, state.slot_dc))) {
          state.plan_col = col;
          ++carried;
        } else {
          stats_[i].slot_credits.fetch_add(1, std::memory_order_relaxed);
          state.holds_slot = false;
          state.slot_dc = DcId();
          state.plan_col = col;
          ++demoted;
        }
      } else {
        // Overflow call under the old plan: the re-plan may have raised its
        // config's quota at the hosting DC — acquire the slot it was denied.
        state.plan_col = col;
        if (try_debit(col, state.dc, new_plan->quota(slot, col, state.dc))) {
          state.holds_slot = true;
          state.slot_dc = state.dc;
          stats_[i].slot_debits.fetch_add(1, std::memory_order_relaxed);
          ++upgraded;
        }
      }
    }
  }
  span.attr(obs::AttrKey::kMoved, carried);
  span.attr(obs::AttrKey::kDropped, demoted);
  span.attr(obs::AttrKey::kEvents, upgraded);
}

std::uint64_t RealtimeSelector::held_slots() const {
  if (!plan_) return 0;
  std::uint64_t total = 0;
  const std::size_t cells = plan_->config_count() * plan_->dc_count();
  for (std::size_t i = 0; i < cells; ++i) {
    total += usage_[i].load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace sb
