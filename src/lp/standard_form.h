// Conversion of a Model to computational standard form:
//
//     minimize c'x   s.t.  A x {<=,>=,=} b,   x >= 0
//
// Fixed variables (lower == upper) are substituted out; remaining variables
// are shifted by their lower bound; finite upper bounds become extra <=
// rows. Both simplex implementations consume this form, and map_back()
// restores values in the original model's variable space.
#pragma once

#include <vector>

#include "lp/model.h"

namespace sb::lp {

struct StandardRow {
  std::vector<Term> terms;  ///< indices into standard-form variables
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

struct StandardForm {
  std::vector<double> cost;       ///< per standard-form variable
  std::vector<StandardRow> rows;
  double objective_offset = 0.0;  ///< from fixed variables and shifts

  // Mapping back to the original model:
  std::vector<int> var_map;      ///< model var -> sf var, or -1 if fixed
  std::vector<double> var_base;  ///< shift (lower bound) or fixed value

  [[nodiscard]] std::size_t var_count() const { return cost.size(); }
};

/// Builds the standard form. Throws InvalidArgument if any variable has a
/// non-finite lower bound.
StandardForm to_standard_form(const Model& model);

/// Maps standard-form values back into the model's variable space.
std::vector<double> map_back(const StandardForm& sf,
                             const std::vector<double>& sf_values,
                             std::size_t model_var_count);

}  // namespace sb::lp
