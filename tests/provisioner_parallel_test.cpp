// Parallel scenario fan-out: with ProvisionOptions::floor_mode == kFromBase
// the failure-scenario LPs are order-independent, so a multi-threaded
// provision() must produce a CapacityPlan BIT-IDENTICAL to the sequential
// run — same per-DC cores, same per-link gbps, same scenario order — and
// the warm-started scenario solves must not change the plan either.
#include <gtest/gtest.h>

#include "core/provisioner.h"
#include "geo/world_presets.h"
#include "trace/config_sampler.h"
#include "trace/trace_gen.h"

namespace sb {
namespace {

struct Fixture {
  Rng rng;
  GeoModel geo;
  CallConfigRegistry registry;
  LoadModel loads = LoadModel::paper_default();
  DemandMatrix demand;

  static RandomWorldParams world_params() {
    RandomWorldParams params;
    params.location_count = 8;
    params.dc_count = 4;
    return params;
  }

  explicit Fixture(std::uint64_t seed)
      : rng(seed),
        geo(make_random_world(rng, world_params())),
        demand(build_demand(seed)) {}

  DemandMatrix build_demand(std::uint64_t seed) {
    UniverseParams universe_params;
    universe_params.config_count = 40;
    universe_params.total_peak_rate_per_hour = 300.0;
    ConfigUniverse universe =
        sample_universe(geo.world, registry, universe_params, rng);
    TraceGenerator trace(geo.world, registry, std::move(universe),
                         DiurnalShape{}, TraceParams{}, seed);
    DemandMatrix full =
        trace.expected_demand(7200.0, kSecondsPerDay, 2 * kSecondsPerDay);
    std::vector<ConfigId> top;
    for (std::size_t i = 0;
         i < std::min<std::size_t>(8, full.config_count()); ++i) {
      top.push_back(full.config_at(i));
    }
    DemandMatrix reduced = make_demand_matrix(top, full.slot_count());
    for (TimeSlot t = 0; t < full.slot_count(); ++t) {
      for (std::size_t c = 0; c < top.size(); ++c) {
        reduced.set_demand(t, c, full.demand(t, c));
      }
    }
    return reduced;
  }

  [[nodiscard]] EvalContext ctx() const {
    return {&geo.world, &geo.topology, &geo.latency, &registry, &loads};
  }
};

void expect_identical_plans(const ProvisionResult& a,
                            const ProvisionResult& b) {
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (std::size_t f = 0; f < a.scenarios.size(); ++f) {
    EXPECT_EQ(a.scenarios[f].scenario.name, b.scenarios[f].scenario.name);
    for (std::size_t x = 0; x < a.capacity.dc_serving_cores.size(); ++x) {
      EXPECT_EQ(a.scenarios[f].required.dc_serving_cores[x],
                b.scenarios[f].required.dc_serving_cores[x])
          << a.scenarios[f].scenario.name << " dc " << x;
    }
    for (std::size_t l = 0; l < a.capacity.link_gbps.size(); ++l) {
      EXPECT_EQ(a.scenarios[f].required.link_gbps[l],
                b.scenarios[f].required.link_gbps[l])
          << a.scenarios[f].scenario.name << " link " << l;
    }
  }
  for (std::size_t x = 0; x < a.capacity.dc_serving_cores.size(); ++x) {
    EXPECT_EQ(a.capacity.dc_serving_cores[x], b.capacity.dc_serving_cores[x]);
    EXPECT_EQ(a.capacity.dc_backup_cores[x], b.capacity.dc_backup_cores[x]);
  }
  for (std::size_t l = 0; l < a.capacity.link_gbps.size(); ++l) {
    EXPECT_EQ(a.capacity.link_gbps[l], b.capacity.link_gbps[l]);
  }
}

TEST(ParallelProvisionTest, FromBaseFloorsGiveBitIdenticalPlansAcrossThreads) {
  const Fixture fix(4242);
  ProvisionOptions options;
  options.floor_mode = ProvisionOptions::FloorMode::kFromBase;

  options.scenario_threads = 1;
  SwitchboardProvisioner sequential(fix.ctx(), options);
  const ProvisionResult seq = sequential.provision(fix.demand);

  options.scenario_threads = 4;
  SwitchboardProvisioner parallel(fix.ctx(), options);
  const ProvisionResult par = parallel.provision(fix.demand);

  expect_identical_plans(seq, par);
}

TEST(ParallelProvisionTest, HardwareConcurrencyAlsoMatches) {
  const Fixture fix(999);
  ProvisionOptions options;
  options.floor_mode = ProvisionOptions::FloorMode::kFromBase;

  options.scenario_threads = 1;
  SwitchboardProvisioner sequential(fix.ctx(), options);
  const ProvisionResult seq = sequential.provision(fix.demand);

  options.scenario_threads = 0;  // hardware concurrency
  SwitchboardProvisioner parallel(fix.ctx(), options);
  const ProvisionResult par = parallel.provision(fix.demand);

  expect_identical_plans(seq, par);
}

TEST(ParallelProvisionTest, NoReuseAblationMatchesAcrossThreads) {
  const Fixture fix(777);
  ProvisionOptions options;
  options.capacity_reuse = false;  // independent scenario LPs + max

  options.scenario_threads = 1;
  SwitchboardProvisioner sequential(fix.ctx(), options);
  const ProvisionResult seq = sequential.provision(fix.demand);

  options.scenario_threads = 3;
  SwitchboardProvisioner parallel(fix.ctx(), options);
  const ProvisionResult par = parallel.provision(fix.demand);

  expect_identical_plans(seq, par);
}

// The point of carrying the F0 basis into the failure scenarios: summed
// over every failure scenario, warm-started LPs must take FEWER simplex
// iterations than cold ones while landing on the same optimum. (The hint's
// row statuses matter here — a structural-only hint loses the slack/tight
// row pattern and is measurably worse than cold.)
TEST(ParallelProvisionTest, WarmStartedScenarioSolvesUseFewerIterations) {
  const Fixture fix(4242);
  ProvisionOptions options;
  SwitchboardProvisioner prov(fix.ctx(), options);

  ScenarioBasisHint f0;
  const ScenarioOutcome base = prov.solve_scenario(
      fix.demand, FailureScenario::none(), nullptr, nullptr, nullptr, &f0);
  ASSERT_FALSE(f0.empty());

  const std::vector<FailureScenario> scenarios =
      enumerate_failures(fix.geo.world, fix.geo.topology, true);
  ASSERT_GT(scenarios.size(), 1u);
  std::size_t cold_total = 0;
  std::size_t warm_total = 0;
  for (std::size_t f = 1; f < scenarios.size(); ++f) {
    const ScenarioOutcome cold =
        prov.solve_scenario(fix.demand, scenarios[f], nullptr, &base.required);
    const ScenarioOutcome warm = prov.solve_scenario(
        fix.demand, scenarios[f], nullptr, &base.required, &f0);
    EXPECT_NEAR(cold.lp_objective, warm.lp_objective,
                1e-7 * std::max(1.0, std::abs(cold.lp_objective)))
        << scenarios[f].name;
    cold_total += cold.lp_iterations;
    warm_total += warm.lp_iterations;
  }
  EXPECT_LT(warm_total, cold_total);
}

// The warm-started chained path (the default) must still produce a plan
// whose every scenario requirement the combined capacity dominates — the
// basis hint may change the LP's pivot path but never its optimum.
TEST(ParallelProvisionTest, ChainedModeStillCoversEveryScenario) {
  const Fixture fix(31337);
  ProvisionOptions options;  // defaults: kChained, warm-started, sequential
  SwitchboardProvisioner provisioner(fix.ctx(), options);
  const ProvisionResult result = provisioner.provision(fix.demand);
  ASSERT_FALSE(result.scenarios.empty());
  for (const ScenarioOutcome& outcome : result.scenarios) {
    for (std::size_t x = 0; x < fix.geo.world.dc_count(); ++x) {
      EXPECT_LE(outcome.required.dc_serving_cores[x],
                result.capacity.dc_total_cores(
                    DcId(static_cast<std::uint32_t>(x))) +
                    1e-5)
          << outcome.scenario.name;
    }
    for (std::size_t l = 0; l < fix.geo.topology.link_count(); ++l) {
      EXPECT_LE(outcome.required.link_gbps[l],
                result.capacity.link_gbps[l] + 1e-7)
          << outcome.scenario.name;
    }
  }
}

}  // namespace
}  // namespace sb
