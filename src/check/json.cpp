#include "check/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace sb::check {

bool Json::as_bool() const {
  require(is_bool(), "Json: not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  require(is_number(), "Json: not a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  require(is_string(), "Json: not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  require(is_array(), "Json: not an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  require(is_object(), "Json: not an object");
  return std::get<Object>(value_);
}

Json::Array& Json::as_array() {
  require(is_array(), "Json: not an array");
  return std::get<Array>(value_);
}

Json::Object& Json::as_object() {
  require(is_object(), "Json: not an object");
  return std::get<Object>(value_);
}

std::uint64_t Json::as_u64() const {
  const double v = as_number();
  require(v >= 0.0, "Json: negative value for unsigned field");
  return static_cast<std::uint64_t>(v);
}

std::int64_t Json::as_i64() const { return static_cast<std::int64_t>(as_number()); }

const Json& Json::get(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  require(it != obj.end(), "Json: missing key '" + key + "'");
  return it->second;
}

const Json* Json::find(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double Json::get_or(const std::string& key, double fallback) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? fallback : it->second.as_number();
}

bool Json::get_or(const std::string& key, bool fallback) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? fallback : it->second.as_bool();
}

Json& Json::operator[](const std::string& key) {
  if (!is_object()) value_ = Object{};
  return std::get<Object>(value_)[key];
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double v, std::string& out) {
  require(std::isfinite(v), "Json: non-finite number");
  // Integers within the exactly-representable range print without a
  // fraction so ids and counts round-trip byte-identically.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  // Shortest round-trip representation.
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  require(ec == std::errc(), "Json: number format");
  out.append(buf, end);
}

}  // namespace

namespace {

void dump_value(const Json& v, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

void dump_value(const Json& v, std::string& out, int indent, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    dump_number(v.as_number(), out);
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    const Json::Array& arr = v.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const Json& item : arr) {
      if (!first) out.push_back(',');
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_value(item, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const Json::Object& obj = v.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out.push_back(',');
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_string(key, out);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      dump_value(value, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push_back('}');
  }
}

/// Recursive-descent parser over a raw byte buffer.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    require(pos_ == text_.size(),
            "Json: trailing content at offset " + std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("Json: " + what + " at offset " +
                          std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Repro files only ever contain ASCII; encode the BMP code point
          // as UTF-8 for completeness.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_ || pos_ == start) {
      fail("bad number");
    }
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace sb::check
