// Diurnal and weekly activity shapes. Conferencing demand from a country
// follows its local business hours, so demand peaks shift across time zones
// (Fig 3) — the effect peak-aware provisioning exploits. The shape is a
// mixture of a morning and an afternoon business bump plus a small evening
// tail, damped on weekends.
#pragma once

#include "common/types.h"
#include "geo/world.h"

namespace sb {

/// The trace epoch is Monday 00:00 UTC; seconds-since-epoch times feed
/// day-of-week and hour-of-day derivation.
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 24.0 * kSecondsPerHour;
inline constexpr double kSecondsPerWeek = 7.0 * kSecondsPerDay;

struct DiurnalParams {
  double morning_peak_hour = 10.5;   ///< local time of the dominant bump
  double afternoon_peak_hour = 14.5;
  double afternoon_weight = 0.35;    ///< afternoon bump height vs morning
  double peak_width_hours = 1.7;     ///< Gaussian sigma of each bump
  double evening_level = 0.08;       ///< flat evening/overnight activity
  double weekend_factor = 0.25;      ///< Saturday/Sunday damping
};

/// Maps (location, absolute trace time) to a relative activity multiplier
/// in (0, 1]; 1.0 is the height of a weekday business peak.
class DiurnalShape {
 public:
  explicit DiurnalShape(DiurnalParams params = {});

  /// Activity of a location at `utc_s` seconds since the trace epoch.
  [[nodiscard]] double activity(const Location& location, SimTime utc_s) const;

  /// Activity given a local clock time directly.
  [[nodiscard]] double activity_local(double local_hour_of_day,
                                      bool weekend) const;

  [[nodiscard]] const DiurnalParams& params() const { return params_; }

 private:
  DiurnalParams params_;
};

/// Hour-of-day in [0, 24) for a location's local clock at `utc_s`.
double local_hour_of_day(const Location& location, SimTime utc_s);

/// True when the location's local calendar day is Saturday or Sunday
/// (epoch = Monday 00:00 UTC).
bool is_local_weekend(const Location& location, SimTime utc_s);

}  // namespace sb
