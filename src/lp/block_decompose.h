// Block-angular decomposition for the cold-solve path.
//
// Switchboard's provisioning LP is block-angular in time slots: each slot
// contributes its own completeness and capacity rows over slot-local
// variables, and only the per-DC peak columns (cp) couple the slots
// together. Solving it monolithically prices every column against every
// other slot's rows for tens of thousands of iterations; solving the slots
// independently and repairing the coupling afterwards is dramatically
// cheaper, because each subproblem is a few hundred rows and the stitched
// crash basis leaves the clean-up solve only the coupling disagreement to
// fix.
//
// The pass is structure-detecting, not provisioning-specific:
//  1. detect_blocks() classifies columns by degree — coupling columns touch
//     far more rows than the block-local median — and unions rows connected
//     through local columns into blocks;
//  2. a MASTER sub-LP over the hardest few blocks (largest total |rhs|,
//     i.e. the busiest slots) is solved with the coupling columns included
//     at their real costs: because it is the parent restricted to a row
//     subset, its optimum is a lower bound on the parent's and its coupling
//     values are optimal for a relaxation;
//  3. every other block solves a small sub-LP (lp/standard_form.h
//     extract_row_subform) with the coupling columns FIXED at the master's
//     values (substituted into the rhs) — independently, so optionally in
//     parallel over common/thread_pool. A block that is infeasible at those
//     values is a binding block the relaxation missed: it joins the master
//     and the loop repeats (constraint generation over blocks). The grown
//     master warm-starts from the previous round's basis — surviving
//     columns and rows keep their statuses, new rows' logicals start basic
//     — and block re-refines warm-start the DUAL simplex from their
//     previous basis, since only the substituted rhs moved (a bound
//     perturbation, the dual engine's designed case);
//  4. when every block is feasible, the stitched point is the master's
//     optimum plus per-block placements that are optimal GIVEN the coupling
//     values, so the remaining gap is only the non-master blocks' influence
//     on the coupling choice. The sub-bases are stitched into one crash
//     basis — each block contributes exactly its square sub-basis, so the
//     crash accepts it without demotions — and a clean-up solve (dual
//     simplex first, primal fallback — see lp/dual_simplex.h) closes the
//     gap.
//
// Subproblem results do not depend on each other, the master loop is
// sequential, and the stitch walks blocks in index order, so the parallel
// run is bit-identical to the sequential one. The master coming back
// infeasible proves the parent infeasible (it is the parent restricted to
// a row subset); a block sub-LP coming back infeasible only sends that
// block into the master. Any other sub-solve failure degrades to a cold
// clean-up solve, i.e. the plain sparse path.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/dense_simplex.h"
#include "lp/standard_form.h"

namespace sb::lp {

/// Row/column classification produced by detect_blocks().
struct BlockPlan {
  /// Per-row block id, or -1 for rows touching only coupling columns
  /// (enforced by the clean-up solve alone).
  std::vector<int> row_block;
  /// Per-column block id, or -1 for coupling columns.
  std::vector<int> col_block;
  std::size_t block_count = 0;
  std::size_t coupling_cols = 0;

  [[nodiscard]] bool usable(std::size_t min_blocks) const {
    return block_count >= min_blocks;
  }
};

/// Classifies the standard form's rows and columns into independent blocks
/// plus coupling columns. Coupling detection is the degree heuristic
/// described above; cost is one pass over the nonzeros.
[[nodiscard]] BlockPlan detect_blocks(const StandardForm& sf);

/// Per-solve counters and phase timings, surfaced as sb.lp.* metrics.
struct DecomposeStats {
  std::size_t blocks = 0;
  std::size_t coupling_cols = 0;
  std::size_t master_rounds = 0;       ///< constraint-generation rounds
  std::size_t sub_iterations = 0;      ///< master + block subproblems
  std::size_t cleanup_iterations = 0;  ///< dual + primal clean-up combined
  bool dual_cleanup_finished = false;  ///< clean-up needed no primal pass
  bool sub_solve_failed = false;       ///< degraded to a cold clean-up
  double detect_seconds = 0.0;
  double sub_seconds = 0.0;
  double cleanup_seconds = 0.0;
};

/// Solves `sf` by the decomposition above. `plan` must come from
/// detect_blocks() on the same form; `threads` > 1 solves subproblems on a
/// private thread pool of that size. Output matches solve_sparse in shape
/// (values over structurals, statuses over structurals + row logicals).
SfSolution solve_decomposed(const StandardForm& sf,
                            const SimplexOptions& options,
                            const BlockPlan& plan, std::size_t threads,
                            DecomposeStats* stats = nullptr);

}  // namespace sb::lp
