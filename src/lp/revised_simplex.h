// Production LP engine: bounded-variable two-phase revised simplex over a
// sparse LU/eta basis (lp/lu_factor.h, lp/basis.h).
//
// What makes it scale where the legacy engines (lp/dense_simplex.h,
// lp/dense_inverse_simplex.h) do not:
//  - the basis is a sparse LU factorization with Markowitz-style pivot
//    ordering, updated between periodic refactorizations by product-form
//    etas — O(nnz) per pivot instead of the dense inverse's O(m^2);
//  - finite upper bounds live in the variable state (at-lower / at-upper /
//    basic), so the row count is independent of how many variables are
//    bounded (standard form built with BoundPolicy::kInline);
//  - rows need no artificial columns: every row carries one logical
//    (slack) variable and a composite phase 1 drives bound violations of
//    the basic set to zero, which is also what makes warm starts work —
//    any crash basis is a valid phase-1 start;
//  - pricing keeps a rotating candidate list (partial pricing) instead of
//    scanning every column per iteration, scored by a true Devex reference
//    framework (tracked reference set, exact entering-column weights, drift-
//    triggered framework restarts), with Bland's rule as the anti-cycling
//    fallback;
//  - bound flips are batched: a phase-2 bound flip leaves the basis — and
//    therefore the duals — unchanged, so consecutive flips skip the BTRAN
//    and re-pricing pass entirely instead of paying a full iteration each.
#pragma once

#include <vector>

#include "lp/dense_simplex.h"
#include "lp/standard_form.h"

namespace sb::lp {

/// Per-solve counters surfaced as sb.lp.* metrics by the solver facade.
struct SparseSolveStats {
  std::size_t factorizations = 0;  ///< basis (re)factorizations
  std::size_t eta_nnz = 0;         ///< LU + update-eta nonzeros at the end
  std::size_t pricing_passes = 0;  ///< candidate-list refresh scans
  std::size_t bound_flips = 0;     ///< nonbasic bound-to-bound moves
  std::size_t devex_resets = 0;    ///< Devex reference-framework restarts
};

/// Solves a standard-form LP built with BoundPolicy::kInline. `warm`, when
/// non-null, holds one status per standard-form structural variable from a
/// previous solve of a structurally similar model: nonbasic variables are
/// re-installed at their bounds, the proposed basic set is crash-factorized
/// (dependent columns demoted, uncovered rows filled with logicals), and
/// phase 1 repairs the residual infeasibility. SfSolution::statuses reports
/// the final structural statuses for the next warm start.
SfSolution solve_sparse(const StandardForm& sf, const SimplexOptions& options,
                        const std::vector<VarStatus>* warm = nullptr,
                        SparseSolveStats* stats = nullptr);

}  // namespace sb::lp
