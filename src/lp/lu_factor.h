// Sparse LU factorization of a simplex basis, stored as an eta file.
//
// The factorization runs Markowitz-style: a symbolic triangularization pass
// peels row and column singletons (the bulk of a provisioning basis — slack
// and near-triangular structural columns — pivots with zero fill-in), then
// the residual nucleus is ordered sparsest-column-first and factorized
// left-looking with threshold partial pivoting. L is kept as a sequence of
// column etas in pivot order (unit diagonal), U as sparse per-pivot columns
// plus a diagonal; FTRAN/BTRAN exploit both the eta sparsity and the
// sparsity of the right-hand side (an ordered worklist applies only the L
// etas actually reached by the rhs pattern).
//
// Singular or near-singular input columns are not fatal: factorize()
// reports them as rejected so the caller (lp::Basis) can repair the basis
// by substituting logical columns for the unpivoted rows — that is how warm
// starts crash an old basis onto a new model.
#pragma once

#include <cstddef>
#include <vector>

namespace sb::lp {

/// Sparse column: (row, value) pairs. Shared with the simplex column store.
using SparseCol = std::vector<std::pair<std::size_t, double>>;

/// Dense-values-plus-nonzero-list vector used by all sparse kernels. `nz`
/// is a duplicate-free superset of the true pattern (entries may cancel to
/// zero); `mark` tracks membership so repeated writes stay O(1).
struct IndexedVector {
  std::vector<double> values;
  std::vector<unsigned char> mark;  ///< 1 iff the index is in `nz`
  std::vector<int> nz;

  void resize(std::size_t m) {
    values.assign(m, 0.0);
    mark.assign(m, 0);
    nz.clear();
  }
  /// Zeroes the listed entries (O(nnz) reset between kernel calls).
  void clear() {
    for (int i : nz) {
      values[static_cast<std::size_t>(i)] = 0.0;
      mark[static_cast<std::size_t>(i)] = 0;
    }
    nz.clear();
  }
  void touch(int i) {
    if (!mark[static_cast<std::size_t>(i)]) {
      mark[static_cast<std::size_t>(i)] = 1;
      nz.push_back(i);
    }
  }
  void set(int i, double v) {
    touch(i);
    values[static_cast<std::size_t>(i)] = v;
  }
  void add(int i, double v) {
    touch(i);
    values[static_cast<std::size_t>(i)] += v;
  }
};

class LuFactor {
 public:
  /// Factorizes the m x m matrix whose k-th column is `cols[k]` (entries are
  /// (row, value); rows in [0, m)). Returns the indices of columns that
  /// could not be pivoted (structurally or numerically dependent); when
  /// non-empty the factorization covers only the pivoted subset and
  /// `unpivoted_rows()` lists the rows left without a pivot, in ascending
  /// order. A clean factorization returns an empty vector.
  std::vector<int> factorize(const std::vector<const SparseCol*>& cols,
                             std::size_t m);

  /// Solves B w = b. Input `x` holds b in row space; output holds w indexed
  /// by basis position (the column order given to factorize()).
  void ftran(IndexedVector& x) const;

  /// Solves B^T y = c. Input `x` holds c indexed by basis position; output
  /// holds y in row space.
  void btran(IndexedVector& x) const;

  [[nodiscard]] const std::vector<int>& unpivoted_rows() const {
    return unpivoted_rows_;
  }
  /// Total stored nonzeros in L + U (fill measure).
  [[nodiscard]] std::size_t fill_nnz() const { return fill_nnz_; }
  [[nodiscard]] std::size_t size() const { return m_; }

 private:
  struct LEta {
    int pivot_row = -1;
    std::vector<std::pair<int, double>> entries;  ///< (row, multiplier)
  };
  struct UCol {
    int position = -1;     ///< basis position of this pivot's column
    int pivot_row = -1;
    double diag = 0.0;
    std::vector<std::pair<int, double>> entries;  ///< (earlier pivot k, u)
  };

  std::size_t m_ = 0;
  std::size_t fill_nnz_ = 0;
  std::vector<LEta> l_;             ///< in pivot order, unit diagonal
  std::vector<UCol> u_;             ///< parallel to l_
  std::vector<int> eta_of_row_;     ///< pivot row -> pivot index, -1 if none
  std::vector<int> unpivoted_rows_;
  void apply_l(IndexedVector& x) const;

  // Workspaces reused across factorize/ftran calls (single-threaded use;
  // the simplex owns one LuFactor per solve).
  mutable IndexedVector work_;
  mutable IndexedVector result_;
  mutable std::vector<double> gwork_;
  mutable std::vector<int> heap_;
  mutable std::vector<unsigned char> queued_;
};

}  // namespace sb::lp
