// The §5.2 forecasting pipeline around Holt-Winters: per-config call-count
// forecasts, peak-normalized accuracy metrics (Fig 9), the validation-based
// provisioning cushion, and assembly of a forecast DemandMatrix for the
// provisioning LP (Table 4).
#pragma once

#include <span>
#include <vector>

#include "calls/demand.h"
#include "forecast/holt_winters.h"

namespace sb {

/// Forecasts `horizon` future buckets of call counts from a history,
/// fitting Holt-Winters with the given season length and clamping the
/// output at zero (counts cannot be negative). Histories shorter than two
/// full seasons get a flat mean-of-history forecast instead of an error;
/// the output never contains NaN/inf. Empty histories and a zero season
/// length throw InvalidArgument.
std::vector<double> forecast_calls(std::span<const double> history,
                                   std::size_t season_length,
                                   std::size_t horizon);

/// Peak-normalized forecast errors, the Fig 9 metric: RMSE and MAE divided
/// by the peak of the ground truth "so elephant and mice call configs are
/// treated in the same way" (§6.5). A truth series that is identically zero
/// yields zero errors iff the forecast is also zero.
struct NormalizedErrors {
  double rmse = 0.0;
  double mae = 0.0;
};
NormalizedErrors normalized_errors(std::span<const double> truth,
                                   std::span<const double> forecast);

/// §5.2's cushion: a multiplicative inflation estimated on a validation
/// window as a high quantile of truth/forecast bucket ratios (only buckets
/// with meaningful demand counted), clamped to [1, max_cushion]. The
/// quantile controls how conservatively the cushion covers forecast error.
double estimate_cushion(std::span<const double> truth,
                        std::span<const double> forecast,
                        double max_cushion = 2.0, double ratio_quantile = 0.95);

/// Converts per-config arrival-count forecasts into a concurrency
/// DemandMatrix via Little's law (arrivals/bucket x mean duration).
/// `arrivals[i]` is the bucket series for `configs[i]`; all series must
/// share one length, which becomes the slot count.
DemandMatrix demand_from_arrivals(
    const std::vector<std::vector<double>>& arrivals,
    const std::vector<ConfigId>& configs, double bucket_s,
    double mean_duration_s, double cushion = 1.0);

}  // namespace sb
