// Shared helpers for the bench binaries: tiny --key=value argument parsing
// and consistent workload construction, so every table/figure bench runs on
// the same scenario defaults (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "calls/demand.h"
#include "common/table.h"
#include "trace/scenario.h"

namespace sb::bench {

/// Emits one machine-readable result line alongside the human-readable
/// table: `{"bench": ..., "metric": ..., "value": ...}`. One JSON object per
/// line, always starting the line with `{"bench"`, so BENCH_*.json
/// trajectories can be scraped with `grep '^{"bench"'` from any bench's
/// stdout.
inline void emit_json(const std::string& bench, const std::string& metric,
                      double value) {
  char formatted[64];
  std::snprintf(formatted, sizeof(formatted), "%.10g", value);
  std::cout << "{\"bench\": \"" << bench << "\", \"metric\": \"" << metric
            << "\", \"value\": " << formatted << "}\n";
}

/// Parses "--name=value" from argv; returns fallback when absent.
inline double arg_double(int argc, char** argv, const std::string& name,
                         double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtod(arg.c_str() + prefix.size(), nullptr);
    }
  }
  return fallback;
}

inline std::size_t arg_size(int argc, char** argv, const std::string& name,
                            std::size_t fallback) {
  return static_cast<std::size_t>(
      arg_double(argc, argv, name, static_cast<double>(fallback)));
}

inline std::string arg_string(int argc, char** argv, const std::string& name,
                              const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

/// Restricts a demand matrix to its first `top_k` columns (the trace
/// universe is sorted by base rate, so these are the most popular configs —
/// the §5.2 "top 1%" device that keeps the LP tractable).
inline DemandMatrix top_k_demand(const DemandMatrix& full, std::size_t top_k) {
  const std::size_t k = std::min(top_k, full.config_count());
  std::vector<ConfigId> configs;
  configs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) configs.push_back(full.config_at(i));
  DemandMatrix out = make_demand_matrix(std::move(configs), full.slot_count());
  for (TimeSlot t = 0; t < full.slot_count(); ++t) {
    for (std::size_t c = 0; c < k; ++c) {
      out.set_demand(t, c, full.demand(t, c));
    }
  }
  return out;
}

/// A design-day demand matrix: expected demand of the scenario's trace over
/// one representative weekday (Tuesday), `slot_s`-second slots, top-k
/// configs.
inline DemandMatrix design_day_demand(const Scenario& scenario, double slot_s,
                                      std::size_t top_k) {
  const DemandMatrix full = scenario.trace->expected_demand(
      slot_s, kSecondsPerDay, 2 * kSecondsPerDay);
  return top_k_demand(full, top_k);
}

}  // namespace sb::bench
