// Property tests for the closed-loop autoscaler (sb_loop) plus unit tests
// for its DemandSchedule flash-crowd shapes and the TimeSeriesRecorder
// feed the loop reads. The scenario harness mirrors the fuzz executor's
// loop wiring: plan from a forecast, replay the truth, let the
// AdaptiveController correct mid-run through Switchboard::install_plan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "check/fuzz_case.h"
#include "check/fuzzer.h"
#include "check/oracles.h"
#include "core/controller.h"
#include "loop/adaptive.h"
#include "loop/demand_schedule.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sim/simulator.h"

namespace sb {
namespace {

using check::FuzzCase;
using check::FuzzCall;
using check::Materialized;
using check::ScenarioFuzzer;

constexpr double kWindowS = 3600.0;
constexpr double kSessionS = 450.0;
constexpr std::size_t kLanes = 40;
constexpr double kFreezeS = 30.0;
constexpr double kCadenceS = 700.0;  ///< last cadence point (3500) precedes
                                     ///< the trace tail, so no tick fires in
                                     ///< the end-of-run drain where observed
                                     ///< concurrency collapses to zero
/// Lanes are phase-shifted across a full session so at most a couple of
/// lanes sit in their (unobservable) pre-freeze window at any instant;
/// aligned lanes would dip the frozen count to ~0 at every session boundary.
constexpr double kLaneStaggerS = kSessionS / static_cast<double>(kLanes);

/// A steady-state trace over a fuzzer-generated world: `kLanes` lanes of
/// back-to-back sessions, so total concurrency holds flat at ~kLanes while
/// events (starts, freezes, ends) keep arriving — the loop's ticks only
/// fire on event arrivals. All calls share one config (2 audio legs).
FuzzCase steady_case() {
  FuzzCase c = ScenarioFuzzer().generate(5);
  c.faults.clear();
  c.world.servers.clear();  // fungible core pools; packing has its own tests
  c.window_start_s = 0.0;
  c.window_end_s = kWindowS;
  c.calls.clear();
  const LocationId loc = c.world.dcs[0].location;
  std::uint64_t id = 0;
  const auto sessions = static_cast<std::size_t>(kWindowS / kSessionS);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    for (std::size_t k = 0; k < sessions; ++k) {
      FuzzCall fc;
      fc.id = id++;
      fc.media = MediaType::kAudio;
      fc.start_s = static_cast<double>(lane) * kLaneStaggerS +
                   static_cast<double>(k) * kSessionS;
      fc.duration_s = kSessionS;
      fc.legs = {{loc, 0.0}, {loc, 5.0}};
      c.calls.push_back(std::move(fc));
    }
  }
  c.options = check::FuzzOptions{};
  c.options.freeze_delay_s = kFreezeS;
  c.options.bucket_s = 60.0;
  c.options.slot_s = 900.0;
  c.options.shard_count = 4;
  c.options.use_plan = true;
  c.options.use_loop = true;
  c.options.loop_cadence_s = kCadenceS;
  // Ticks compare instantaneous observed concurrency against the
  // slot-AVERAGED forecast; in the first slot the lane ramp-in drags the
  // average ~25% below steady state, so the band must absorb that much.
  c.options.loop_band = 0.35;
  return c;
}

/// Same horizon rule as the fuzz executor.
DemandMatrix build_demand(const Materialized& m, const FuzzCase& c) {
  double end = c.window_end_s;
  for (const CallRecord& rec : m.db.records()) {
    end = std::max(end, rec.start_s + rec.duration_s);
  }
  const double slot_s = c.options.slot_s;
  const double span = std::max(end - c.window_start_s, slot_s);
  const auto slots = static_cast<std::size_t>(std::ceil(span / slot_s - 1e-9));
  const double horizon = c.window_start_s + static_cast<double>(slots) * slot_s;
  return DemandMatrix::from_records(m.db, m.registry.ids(), slot_s,
                                    c.window_start_s, horizon);
}

DemandMatrix scaled(const DemandMatrix& d, double scale) {
  DemandMatrix out = d;
  for (TimeSlot t = 0; t < d.slot_count(); ++t) {
    for (std::size_t col = 0; col < d.config_count(); ++col) {
      out.set_demand(t, col, d.demand(t, col) * scale);
    }
  }
  return out;
}

/// Plan-from-forecast, replay-the-truth harness around AdaptiveController.
struct LoopHarness {
  std::unique_ptr<Materialized> m;
  DemandMatrix truth;
  std::unique_ptr<Switchboard> sb;
  std::unique_ptr<loop::AdaptiveController> loop;
  SimReport rep;
  HostingLog log;

  LoopHarness(const FuzzCase& c, double forecast_scale,
              bool chaos_skip_replan = false,
              obs::TimeSeriesRecorder* recorder = nullptr)
      : m(c.materialize()), truth(build_demand(*m, c)) {
    const DemandMatrix forecast =
        forecast_scale == 1.0 ? truth : scaled(truth, forecast_scale);
    ControllerOptions copts;
    copts.slot_s = c.options.slot_s;
    copts.realtime.freeze_delay_s = c.options.freeze_delay_s;
    copts.realtime.shard_count = c.options.shard_count;
    sb = std::make_unique<Switchboard>(m->ctx(), copts);
    sb->provision(forecast);
    sb->build_allocation_plan(forecast, c.window_start_s);
    loop::LoopOptions lopts;
    lopts.cadence_s = c.options.loop_cadence_s;
    lopts.deviation_band = c.options.loop_band;
    lopts.chaos_skip_replan = chaos_skip_replan;
    loop = std::make_unique<loop::AdaptiveController>(
        *sb, m->ctx(), forecast, c.window_start_s, c.options.slot_s, lopts,
        recorder);
  }

  /// The timing-sensitive properties run on the reference engine: per-event
  /// ticks land at the exact cadence crossings. The batched engine only
  /// ticks at batch boundaries (~batch_events/event_rate apart), which is
  /// exercised by the install/chaos tests where tick placement is free.
  void run(const FuzzCase& c,
           Simulator::Engine engine = Simulator::Engine::kBatched) {
    Simulator sim(m->ctx());
    sim.set_engine(engine);
    rep = sim.run(m->db, *loop, c.options.freeze_delay_s, nullptr,
                  c.options.bucket_s, &log);
  }
};

TEST(AdaptiveLoop, SilentWhenObservationMatchesForecast) {
  const FuzzCase c = steady_case();
  LoopHarness h(c, 1.0);
  h.run(c, Simulator::Engine::kReference);

  const loop::LoopStats s = h.loop->stats();
  EXPECT_GE(s.ticks, 4u);  // cadence points at 700, 1400, 2100, 2800, 3500
  EXPECT_EQ(s.triggers, 0u) << "steady trace matching its forecast must "
                               "never leave the deviation band";
  EXPECT_EQ(s.replans, 0u);
  EXPECT_EQ(s.solve_errors, 0u);
  EXPECT_EQ(h.rep.calls, c.calls.size());
  EXPECT_EQ(h.rep.dropped_calls, 0u);
}

TEST(AdaptiveLoop, CorrectsUnderForecastAndConverges) {
  const FuzzCase c = steady_case();
  obs::TimeSeriesRecorder recorder(&obs::MetricsRegistry::global(),
                                   {.period_s = 60.0});
  LoopHarness h(c, 0.3, false, &recorder);
  h.run(c, Simulator::Engine::kReference);

  const loop::LoopStats s = h.loop->stats();
  EXPECT_GE(s.replans, 1u) << "a 0.3x forecast must trigger a correction";
  EXPECT_EQ(s.solve_errors, 0u);
  EXPECT_EQ(s.triggers, s.replans);
  // Convergence / no thrash: the first correction re-centers the forecast
  // on the observation, so later ticks stay inside the band.
  EXPECT_LE(s.replans, 2u);
  EXPECT_GE(s.ticks, s.replans + 2);

  // Coverage at quiescence: the installed forecast covers the observed
  // steady demand within the freeze-visibility budget (only frozen calls
  // are observable, kFreezeS of every kSessionS session is not).
  const DemandMatrix final_forecast = h.loop->current_forecast();
  const double visible = 1.0 - kFreezeS / kSessionS;
  for (TimeSlot t = 1; t + 1 < final_forecast.slot_count(); ++t) {
    double got = 0.0;
    double want = 0.0;
    for (std::size_t col = 0; col < final_forecast.config_count(); ++col) {
      got += final_forecast.demand(t, col);
      want += h.truth.demand(t, col);
    }
    EXPECT_GE(got, want * visible * 0.9)
        << "slot " << t << " still under-forecast after correction";
  }

  // The loop read its signal through the telemetry feed, not just the
  // shadow counters.
  EXPECT_GT(recorder.sample_count(), 0u);
  EXPECT_GT(recorder.last("gauge:sb.loop.observed_calls"), 0.0);

  // Rebind conservation: a mid-run plan install re-binds live calls; at
  // quiescence nothing may be leaked or double-credited.
  EXPECT_EQ(h.rep.dropped_calls, 0u);
  EXPECT_EQ(h.sb->active_calls(), 0u);
  EXPECT_EQ(h.sb->held_slots(), 0u);
  const RealtimeSelector::Stats rs = h.sb->realtime_stats();
  EXPECT_EQ(rs.slot_debits, rs.slot_credits);
}

TEST(AdaptiveLoop, MidRunInstallCannotDoubleCountBuckets) {
  const FuzzCase c = steady_case();
  auto& reg = obs::MetricsRegistry::global();
  for (std::uint32_t x = 0; x < c.world.dcs.size(); ++x) {
    reg.gauge("sb.sim.dc_peak_cores." + std::to_string(x)).reset();
  }
  LoopHarness h(c, 0.3);
  h.run(c);
  ASSERT_GE(h.loop->stats().replans, 1u) << "needs a mid-run install";

  // The report's bucketed core series must equal an independent recount
  // from the hosting log across the install boundary: the usage tracker is
  // plan-independent, so swapping the plan mid-run must not double-count.
  std::size_t buckets = 0;
  for (const auto& row : h.rep.dc_cores_buckets) {
    buckets = std::max(buckets, row.size());
  }
  const auto counted =
      check::recount_dc_buckets(*h.m, h.log, c.options.bucket_s, buckets);
  ASSERT_EQ(counted.size(), h.rep.dc_cores_buckets.size());
  for (std::size_t x = 0; x < counted.size(); ++x) {
    for (std::size_t b = 0; b < buckets; ++b) {
      const double w = b < counted[x].size() ? counted[x][b] : 0.0;
      const double g =
          b < h.rep.dc_cores_buckets[x].size() ? h.rep.dc_cores_buckets[x][b]
                                               : 0.0;
      ASSERT_NEAR(w, g, 1e-6 * std::max(1.0, std::abs(w)))
          << "dc " << x << " bucket " << b;
    }
  }

  // Per-DC peak gauges are resolved exactly once, at end of run, from the
  // same tracker — so they agree with the report even though a plan was
  // installed mid-run.
  for (std::size_t x = 0; x < h.rep.dc_peak_cores.size(); ++x) {
    EXPECT_EQ(reg.gauge("sb.sim.dc_peak_cores." + std::to_string(x)).value(),
              h.rep.dc_peak_cores[x])
        << "dc " << x;
  }
}

TEST(AdaptiveLoop, ChaosSkipReplanUnbalancesTheStats) {
  const FuzzCase c = steady_case();
  LoopHarness h(c, 0.3, /*chaos_skip_replan=*/true);
  h.run(c);
  const loop::LoopStats s = h.loop->stats();
  EXPECT_GE(s.triggers, 1u);
  EXPECT_EQ(s.replans, 0u);
  EXPECT_EQ(s.solve_errors, 0u);
  // This imbalance is exactly what the fuzz loop-replan oracle asserts on.
  EXPECT_NE(s.triggers, s.replans + s.solve_errors);
}

// ---------------------------------------------------------------------------
// DemandSchedule
// ---------------------------------------------------------------------------

TEST(DemandSchedule, PhasesComposeMultiplicativelyAndFilterByLocation) {
  loop::DemandSchedule sched;
  sched.add_phase({100.0, 200.0, 2.0, LocationId()});        // global
  sched.add_phase({150.0, 250.0, 3.0, LocationId(1)});       // regional
  const LocationId here(1);
  const LocationId there(2);
  EXPECT_EQ(sched.multiplier_at(50.0, here), 1.0);
  EXPECT_EQ(sched.multiplier_at(120.0, here), 2.0);
  EXPECT_EQ(sched.multiplier_at(180.0, here), 6.0);  // both phases
  EXPECT_EQ(sched.multiplier_at(180.0, there), 2.0); // global only
  EXPECT_EQ(sched.multiplier_at(220.0, here), 3.0);
  EXPECT_EQ(sched.multiplier_at(200.0, there), 1.0); // half-open end
}

TEST(DemandSchedule, ViralSpikeRampsHoldsAndDecays) {
  const auto sched =
      loop::DemandSchedule::viral_spike(1000.0, 400.0, 4.0, 600.0, 400.0);
  const LocationId any(0);
  EXPECT_EQ(sched.multiplier_at(999.0, any), 1.0);
  const double mid_ramp = sched.multiplier_at(1200.0, any);
  EXPECT_GT(mid_ramp, 1.0);
  EXPECT_LT(mid_ramp, 4.0);
  EXPECT_EQ(sched.multiplier_at(1500.0, any), 4.0);  // holding at peak
  EXPECT_EQ(sched.multiplier_at(1900.0, any), 4.0);
  const double mid_decay = sched.multiplier_at(2200.0, any);
  EXPECT_GT(mid_decay, 1.0);
  EXPECT_LT(mid_decay, 4.0);
  EXPECT_EQ(sched.multiplier_at(2600.0, any), 1.0);
}

TEST(DemandSchedule, RegionalReboundCollapsesThenOvershoots) {
  const LocationId region(3);
  const LocationId elsewhere(4);
  const auto sched = loop::DemandSchedule::regional_rebound(
      region, 1000.0, 1600.0, 0.2, 2.5, 500.0);
  EXPECT_EQ(sched.multiplier_at(1200.0, region), 0.2);
  EXPECT_EQ(sched.multiplier_at(1200.0, elsewhere), 1.0);
  EXPECT_EQ(sched.multiplier_at(1700.0, region), 2.5);
  EXPECT_EQ(sched.multiplier_at(1700.0, elsewhere), 1.0);
  EXPECT_EQ(sched.multiplier_at(2200.0, region), 1.0);  // rebound over
}

CallRecordDatabase flat_trace(std::size_t n) {
  CallRecordDatabase db;
  for (std::size_t i = 0; i < n; ++i) {
    CallRecord r;
    r.id = CallId(static_cast<std::uint32_t>(i));
    r.config = ConfigId(0);
    r.start_s = static_cast<double>(i);
    r.duration_s = 300.0;
    r.legs = {{LocationId(0), 0.0}};
    db.add(std::move(r));
  }
  return db;
}

TEST(DemandSchedule, ScaleTraceThinsDuplicatesAndIsDeterministic) {
  const CallRecordDatabase db = flat_trace(400);
  loop::DemandSchedule thin;
  thin.add_phase({0.0, 1000.0, 0.5, LocationId()});
  const CallRecordDatabase a = thin.scale_trace(db, 42);
  const CallRecordDatabase b = thin.scale_trace(db, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].id, b.records()[i].id);
    EXPECT_EQ(a.records()[i].start_s, b.records()[i].start_s);
  }
  EXPECT_LT(a.size(), db.size());
  EXPECT_GT(a.size(), db.size() / 4);  // thinning at 0.5, not decimation

  loop::DemandSchedule triple;
  triple.add_phase({0.0, 1000.0, 3.0, LocationId()});
  const CallRecordDatabase t = triple.scale_trace(db, 7);
  EXPECT_EQ(t.size(), db.size() * 3);  // exact: floor(3-1)=2 copies each
  // Duplicates get fresh unique ids above the input's range.
  std::vector<std::uint32_t> ids;
  for (const CallRecord& r : t.records()) ids.push_back(r.id.value());
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

// ---------------------------------------------------------------------------
// TimeSeriesRecorder::last — the feed accessor the loop's tick reads
// ---------------------------------------------------------------------------

TEST(TimeSeriesFeed, LastReturnsMostRecentSampleAndZeroWhenAbsent) {
  auto& reg = obs::MetricsRegistry::global();
  obs::TimeSeriesRecorder rec(&reg, {.period_s = 10.0});
  EXPECT_EQ(rec.last("gauge:loop_test.signal"), 0.0);
  reg.gauge("loop_test.signal").set(17.5);
  rec.force_sample(100.0);
  EXPECT_EQ(rec.last("gauge:loop_test.signal"), 17.5);
  reg.gauge("loop_test.signal").set(21.0);
  rec.force_sample(200.0);
  EXPECT_EQ(rec.last("gauge:loop_test.signal"), 21.0);
  EXPECT_EQ(rec.last("gauge:loop_test.absent"), 0.0);
}

}  // namespace
}  // namespace sb
