
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/config_predictor.cpp" "src/predict/CMakeFiles/sb_predict.dir/config_predictor.cpp.o" "gcc" "src/predict/CMakeFiles/sb_predict.dir/config_predictor.cpp.o.d"
  "/root/repo/src/predict/logistic.cpp" "src/predict/CMakeFiles/sb_predict.dir/logistic.cpp.o" "gcc" "src/predict/CMakeFiles/sb_predict.dir/logistic.cpp.o.d"
  "/root/repo/src/predict/momc.cpp" "src/predict/CMakeFiles/sb_predict.dir/momc.cpp.o" "gcc" "src/predict/CMakeFiles/sb_predict.dir/momc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sb_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
