# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/calls_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/lp_property_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/forecast_test[1]_include.cmake")
include("/root/repo/build/tests/core_provision_test[1]_include.cmake")
include("/root/repo/build/tests/core_allocation_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/predict_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/lp_presolve_test[1]_include.cmake")
include("/root/repo/build/tests/calls_io_test[1]_include.cmake")
include("/root/repo/build/tests/provisioner_property_test[1]_include.cmake")
