// Unit tests for the LP toolkit: model building, standard-form conversion,
// and both simplex implementations on problems with known optima.
#include <gtest/gtest.h>

#include "lp/solver.h"
#include "lp/standard_form.h"

namespace sb::lp {
namespace {

Solution solve_with(const Model& model, Method method) {
  SolveOptions options;
  options.method = method;
  return solve(model, options);
}

class SimplexMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(SimplexMethodTest, SolvesTwoVariableMaximizationAsMinimization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, obj 36.
  Model m;
  const int x = m.add_variable(0.0, kInf, -3.0, "x");
  const int y = m.add_variable(0.0, kInf, -5.0, "y");
  m.add_constraint({{x, 1.0}}, Sense::kLe, 4.0);
  m.add_constraint({{y, 2.0}}, Sense::kLe, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, Sense::kLe, 18.0);

  const Solution s = solve_with(m, GetParam());
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
  EXPECT_NEAR(s.values[x], 2.0, 1e-8);
  EXPECT_NEAR(s.values[y], 6.0, 1e-8);
}

TEST_P(SimplexMethodTest, SolvesEqualityAndGeConstraints) {
  // min 2x + 3y s.t. x + y = 10, x >= 3, y >= 2  => x=8? No: cost favors x?
  // 2 < 3 so push mass to x: x=8, y=2, obj 22.
  Model m;
  const int x = m.add_variable(0.0, kInf, 2.0, "x");
  const int y = m.add_variable(0.0, kInf, 3.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEq, 10.0);
  m.add_constraint({{x, 1.0}}, Sense::kGe, 3.0);
  m.add_constraint({{y, 1.0}}, Sense::kGe, 2.0);

  const Solution s = solve_with(m, GetParam());
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 22.0, 1e-8);
  EXPECT_NEAR(s.values[x], 8.0, 1e-8);
  EXPECT_NEAR(s.values[y], 2.0, 1e-8);
}

TEST_P(SimplexMethodTest, DetectsInfeasibility) {
  Model m;
  const int x = m.add_variable(0.0, kInf, 1.0, "x");
  m.add_constraint({{x, 1.0}}, Sense::kGe, 5.0);
  m.add_constraint({{x, 1.0}}, Sense::kLe, 3.0);
  EXPECT_EQ(solve_with(m, GetParam()).status, SolveStatus::kInfeasible);
}

TEST_P(SimplexMethodTest, DetectsUnboundedness) {
  Model m;
  const int x = m.add_variable(0.0, kInf, -1.0, "x");
  m.add_constraint({{x, -1.0}}, Sense::kLe, 1.0);  // -x <= 1, x free upward
  EXPECT_EQ(solve_with(m, GetParam()).status, SolveStatus::kUnbounded);
}

TEST_P(SimplexMethodTest, HandlesVariableBoundsViaShifting) {
  // min x + y with x in [2, 5], y in [1, 3], x + y >= 4.
  // Optimum: x=3? cost equal; any split with sum 4: obj 4; bounds force
  // x >= 2, y >= 1 so x+y >= 3; constraint binds at 4.
  Model m;
  const int x = m.add_variable(2.0, 5.0, 1.0, "x");
  const int y = m.add_variable(1.0, 3.0, 1.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGe, 4.0);
  const Solution s = solve_with(m, GetParam());
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-8);
  EXPECT_GE(s.values[x], 2.0 - 1e-9);
  EXPECT_LE(s.values[x], 5.0 + 1e-9);
  EXPECT_GE(s.values[y], 1.0 - 1e-9);
  const ValidationReport report = validate_solution(m, s.values);
  EXPECT_TRUE(report.feasible) << report.worst;
}

TEST_P(SimplexMethodTest, FixedVariablesAreSubstituted) {
  Model m;
  const int x = m.add_variable(7.0, 7.0, 2.0, "x");  // fixed at 7
  const int y = m.add_variable(0.0, kInf, 1.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGe, 10.0);
  const Solution s = solve_with(m, GetParam());
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 7.0, 1e-12);
  EXPECT_NEAR(s.values[y], 3.0, 1e-8);
  EXPECT_NEAR(s.objective, 17.0, 1e-8);
}

TEST_P(SimplexMethodTest, DegenerateProblemTerminates) {
  // Classic degenerate LP (multiple constraints intersect at the optimum).
  Model m;
  const int x = m.add_variable(0.0, kInf, -0.75, "x");
  const int y = m.add_variable(0.0, kInf, 150.0, "y");
  const int z = m.add_variable(0.0, kInf, -0.02, "z");
  const int w = m.add_variable(0.0, kInf, 6.0, "w");
  m.add_constraint({{x, 0.25}, {y, -60.0}, {z, -0.04}, {w, 9.0}}, Sense::kLe,
                   0.0);
  m.add_constraint({{x, 0.5}, {y, -90.0}, {z, -0.02}, {w, 3.0}}, Sense::kLe,
                   0.0);
  m.add_constraint({{z, 1.0}}, Sense::kLe, 1.0);
  const Solution s = solve_with(m, GetParam());
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-6);  // Beale's cycling example optimum
}

TEST_P(SimplexMethodTest, RedundantEqualityRowsAreHandled) {
  // Duplicate equality rows leave a zero-valued artificial in the basis.
  Model m;
  const int x = m.add_variable(0.0, kInf, 1.0, "x");
  const int y = m.add_variable(0.0, kInf, 2.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEq, 6.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEq, 6.0);
  m.add_constraint({{x, 2.0}, {y, 2.0}}, Sense::kEq, 12.0);
  const Solution s = solve_with(m, GetParam());
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 6.0, 1e-8);
  EXPECT_NEAR(s.values[x], 6.0, 1e-8);
}

TEST_P(SimplexMethodTest, TransportationProblem) {
  // 2 supplies (10, 15) -> 3 demands (8, 9, 8); costs:
  //   s0: 4 6 9 ; s1: 5 3 2. Optimal: s0->d0 8, s0->d1 2, s1->d1 7, s1->d2 8
  //   cost = 32 + 12 + 21 + 16 = 81.
  Model m;
  const double cost[2][3] = {{4, 6, 9}, {5, 3, 2}};
  int v[2][3];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      v[i][j] = m.add_variable(0.0, kInf, cost[i][j]);
    }
  }
  const double supply[2] = {10, 15};
  const double demand[3] = {8, 9, 8};
  for (int i = 0; i < 2; ++i) {
    m.add_constraint({{v[i][0], 1.0}, {v[i][1], 1.0}, {v[i][2], 1.0}},
                     Sense::kLe, supply[i]);
  }
  for (int j = 0; j < 3; ++j) {
    m.add_constraint({{v[0][j], 1.0}, {v[1][j], 1.0}}, Sense::kEq, demand[j]);
  }
  const Solution s = solve_with(m, GetParam());
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 81.0, 1e-8);
  EXPECT_TRUE(validate_solution(m, s.values).feasible);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SimplexMethodTest,
                         ::testing::Values(Method::kDense, Method::kRevised,
                                           Method::kSparse),
                         [](const auto& info) {
                           switch (info.param) {
                             case Method::kDense:
                               return "Dense";
                             case Method::kRevised:
                               return "Revised";
                             default:
                               return "Sparse";
                           }
                         });

TEST(StandardFormTest, ShiftsLowerBoundsAndAddsUpperRows) {
  Model m;
  m.add_variable(2.0, 5.0, 1.0, "x");
  m.add_variable(0.0, kInf, 1.0, "y");
  m.add_variable(3.0, 3.0, 4.0, "fixed");
  m.add_constraint({{0, 1.0}, {1, 2.0}, {2, 1.0}}, Sense::kLe, 20.0);
  const StandardForm sf = to_standard_form(m);
  EXPECT_EQ(sf.var_count(), 2u);             // fixed var substituted
  EXPECT_EQ(sf.rows.size(), 2u);             // ub row for x + original row
  EXPECT_EQ(sf.var_map[2], -1);
  EXPECT_DOUBLE_EQ(sf.var_base[0], 2.0);
  // Original row rhs folded: 20 - 1*2 (x shift) - 1*3 (fixed) = 15.
  EXPECT_DOUBLE_EQ(sf.rows[1].rhs, 15.0);
  // Objective offset: 1*2 + 4*3 = 14.
  EXPECT_DOUBLE_EQ(sf.objective_offset, 14.0);
}

TEST(ModelTest, MergesDuplicateTermsAndValidates) {
  Model m;
  const int x = m.add_variable(0.0, kInf, 1.0);
  const int row = m.add_constraint({{x, 1.0}, {x, 2.0}}, Sense::kLe, 9.0);
  EXPECT_EQ(m.constraint(row).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.constraint(row).terms[0].coeff, 3.0);
  EXPECT_THROW(m.add_constraint({{42, 1.0}}, Sense::kLe, 0.0),
               InvalidArgument);
  EXPECT_THROW(m.add_variable(-kInf, 0.0, 1.0), InvalidArgument);
}

TEST(ValidateSolutionTest, FlagsViolations) {
  Model m;
  const int x = m.add_variable(0.0, 10.0, 1.0, "x");
  m.add_constraint({{x, 1.0}}, Sense::kGe, 5.0, "atleast5");
  const ValidationReport bad = validate_solution(m, {2.0});
  EXPECT_FALSE(bad.feasible);
  EXPECT_NEAR(bad.max_violation, 3.0, 1e-12);
  const ValidationReport good = validate_solution(m, {6.0});
  EXPECT_TRUE(good.feasible);
}

TEST(SolverTest, EmptyConstraintProblems) {
  Model bounded;
  bounded.add_variable(1.0, kInf, 2.0, "x");
  const Solution s = solve(bounded);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-12);  // sits at the lower bound

  Model unbounded;
  unbounded.add_variable(0.0, kInf, -1.0, "x");
  EXPECT_EQ(solve(unbounded).status, SolveStatus::kUnbounded);
}

}  // namespace
}  // namespace sb::lp
