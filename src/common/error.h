// Exception types used across Switchboard. All errors derive from sb::Error
// so call sites can catch the library's failures without swallowing
// std::bad_alloc and friends.
#pragma once

#include <stdexcept>
#include <string>

namespace sb {

/// Base class for all Switchboard errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition (bad argument, out-of-range
/// index, inconsistent sizes).
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// An optimization model could not be solved (infeasible, unbounded, or the
/// solver hit an iteration/time limit).
class SolveError : public Error {
 public:
  using Error::Error;
};

/// Internal invariant broken — indicates a bug in this library.
class InternalError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void throw_invalid(const std::string& msg) {
  throw InvalidArgument(msg);
}
}  // namespace detail

/// Throws InvalidArgument with `msg` unless `cond` holds. Used to validate
/// public API preconditions; internal invariants use SB_ASSERT-style checks
/// in .cpp files instead.
inline void require(bool cond, const std::string& msg) {
  if (!cond) detail::throw_invalid(msg);
}

}  // namespace sb
