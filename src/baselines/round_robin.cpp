#include "baselines/round_robin.h"

#include <algorithm>

#include "common/error.h"
#include "core/failure.h"

namespace sb {

std::vector<DcId> region_candidates(const CallConfig& config,
                                    const World& world) {
  const std::string& region =
      world.location(config.majority_location()).region;
  std::vector<DcId> dcs = world.dcs_in_region(region);
  if (dcs.empty()) dcs = world.dc_ids();
  return dcs;
}

namespace {

/// RR placement under a failure scenario: each config spreads equally over
/// its usable regional DCs (alive, and with paths avoiding a failed link);
/// if the link failure leaves nothing usable, the alive DCs carry the
/// nominal spread.
PlacementMatrix rr_scenario_placement(const DemandMatrix& demand,
                                      const EvalContext& ctx,
                                      const FailureScenario& scenario) {
  const World& world = *ctx.world;
  PlacementMatrix placement(demand.slot_count(), demand.config_count(),
                            world.dc_count());
  for (std::size_t c = 0; c < demand.config_count(); ++c) {
    const CallConfig& config = ctx.registry->get(demand.config_at(c));
    const std::vector<DcId> regional = region_candidates(config, world);
    std::vector<DcId> usable;
    for (DcId dc : regional) {
      if (!dc_available(scenario, dc)) continue;
      const LocationId dc_loc = world.datacenter(dc).location;
      bool blocked = false;
      for (const ConfigEntry& e : config.entries()) {
        if (uses_failed_link(scenario, *ctx.topology, dc_loc, e.location)) {
          blocked = true;
          break;
        }
      }
      if (!blocked) usable.push_back(dc);
    }
    if (usable.empty()) {
      for (DcId dc : regional) {
        if (dc_available(scenario, dc)) usable.push_back(dc);
      }
    }
    require(!usable.empty(), "round robin: no DC available under scenario");
    const double share = 1.0 / static_cast<double>(usable.size());
    for (TimeSlot t = 0; t < demand.slot_count(); ++t) {
      const double d = demand.demand(t, c);
      if (d <= 0.0) continue;
      for (DcId dc : usable) placement.set_calls(t, c, dc, d * share);
    }
  }
  return placement;
}

}  // namespace

PlacementMatrix round_robin_placement(const DemandMatrix& demand,
                                      const EvalContext& ctx) {
  return rr_scenario_placement(demand, ctx, FailureScenario::none());
}

BaselineResult provision_round_robin(const DemandMatrix& demand,
                                     const EvalContext& ctx,
                                     const BaselineOptions& options) {
  const World& world = *ctx.world;
  const Topology& topo = *ctx.topology;

  PlacementMatrix base = round_robin_placement(demand, ctx);
  const UsageProfile base_usage = compute_usage(base, demand, ctx);

  BaselineResult result{plan_from_usage(base_usage), std::move(base), 0.0};
  result.mean_acl_ms = mean_acl_ms(result.placement, demand, ctx);

  if (!options.with_backup) return result;

  // §3.1 backup: each DC holds serving_peak / (n - 1) extra so the failed
  // DC's equal share fits across the survivors.
  const std::size_t n = world.dc_count();
  require(n >= 2, "provision_round_robin: backup needs >= 2 DCs");
  for (std::size_t x = 0; x < n; ++x) {
    result.capacity.dc_backup_cores[x] =
        result.capacity.dc_serving_cores[x] / static_cast<double>(n - 1);
  }

  // WAN capacity must cover the worst failure scenario's per-link peak.
  for (const FailureScenario& scenario :
       enumerate_failures(world, topo, options.include_link_failures)) {
    if (scenario.type == FailureScenario::Type::kNone) continue;
    const PlacementMatrix shifted =
        rr_scenario_placement(demand, ctx, scenario);
    const std::vector<double> peaks =
        compute_usage(shifted, demand, ctx).link_peaks();
    for (std::size_t l = 0; l < peaks.size(); ++l) {
      result.capacity.link_gbps[l] =
          std::max(result.capacity.link_gbps[l], peaks[l]);
    }
  }
  return result;
}

}  // namespace sb
