#include "loop/demand_schedule.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace sb::loop {

double DemandSchedule::multiplier_at(SimTime t, LocationId first) const {
  double m = 1.0;
  for (const DemandPhase& p : phases_) {
    if (t < p.start_s || t >= p.end_s) continue;
    if (p.location.valid() && p.location != first) continue;
    m *= p.multiplier;
  }
  return m;
}

DemandSchedule DemandSchedule::viral_spike(SimTime start_s, double ramp_s,
                                           double peak, double hold_s,
                                           double decay_s, std::size_t steps) {
  require(peak >= 1.0, "viral_spike: peak multiplier below 1");
  require(steps >= 1, "viral_spike: steps");
  DemandSchedule s;
  // Stair-step up: step k (1-based) holds 1 + (peak - 1) * k / steps.
  const double step_up = ramp_s / static_cast<double>(steps);
  for (std::size_t k = 1; k <= steps; ++k) {
    const double level =
        1.0 + (peak - 1.0) * static_cast<double>(k) / static_cast<double>(steps);
    const SimTime begin = start_s + step_up * static_cast<double>(k - 1);
    const SimTime end =
        k == steps ? start_s + ramp_s : start_s + step_up * static_cast<double>(k);
    s.add_phase({begin, end, level, LocationId()});
  }
  const SimTime peak_begin = start_s + ramp_s;
  s.add_phase({peak_begin, peak_begin + hold_s, peak, LocationId()});
  // Stair-step down mirrors the ramp.
  const SimTime decay_begin = peak_begin + hold_s;
  const double step_down = decay_s / static_cast<double>(steps);
  for (std::size_t k = 1; k <= steps; ++k) {
    const double level =
        1.0 + (peak - 1.0) *
                  static_cast<double>(steps - k) / static_cast<double>(steps);
    if (level <= 1.0) break;  // the last step is baseline; no phase needed
    const SimTime begin = decay_begin + step_down * static_cast<double>(k - 1);
    s.add_phase({begin, begin + step_down, level, LocationId()});
  }
  return s;
}

DemandSchedule DemandSchedule::regional_rebound(LocationId location,
                                                SimTime fail_s,
                                                SimTime recover_s,
                                                double outage_mult,
                                                double rebound_mult,
                                                double rebound_s) {
  require(location.valid(), "regional_rebound: location");
  require(recover_s > fail_s, "regional_rebound: window");
  DemandSchedule s;
  s.add_phase({fail_s, recover_s, outage_mult, location});
  s.add_phase({recover_s, recover_s + rebound_s, rebound_mult, location});
  return s;
}

CallRecordDatabase DemandSchedule::scale_trace(const CallRecordDatabase& db,
                                               std::uint64_t seed,
                                               double jitter_s) const {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x10095cedULL);
  std::uint64_t next_id = 0;
  for (const CallRecord& r : db.records()) {
    next_id = std::max<std::uint64_t>(next_id, r.id.value() + 1);
  }
  CallRecordDatabase out;
  out.reserve(db.size());
  for (const CallRecord& r : db.records()) {
    const LocationId first =
        r.legs.empty() ? LocationId() : r.legs.front().location;
    const double m = multiplier_at(r.start_s, first);
    if (m < 1.0) {
      if (rng.chance(m)) out.add(r);
      continue;
    }
    out.add(r);
    const double extra = m - 1.0;
    std::uint64_t copies = static_cast<std::uint64_t>(std::floor(extra));
    if (rng.chance(extra - std::floor(extra))) ++copies;
    for (std::uint64_t c = 0; c < copies; ++c) {
      CallRecord dup = r;
      dup.id = CallId(static_cast<CallId::underlying_type>(next_id++));
      if (jitter_s > 0.0) dup.start_s += rng.uniform(0.0, jitter_s);
      out.add(std::move(dup));
    }
  }
  return out;
}

}  // namespace sb::loop
