// Variable-length multi-order Markov chain (MOMC) over per-participant
// attendance histories (§8): for each context of recent attend/miss bits
// (orders 1..K), pooled counts estimate the probability the participant
// attends the next instance. Prediction backs off from the longest context
// with enough support. The per-order probabilities also serve as features
// for the downstream logistic regression.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace sb {

class MarkovAttendanceModel {
 public:
  /// @param max_order longest context length considered.
  /// @param min_support contexts with fewer observations back off to a
  ///        shorter order.
  explicit MarkovAttendanceModel(std::size_t max_order = 3,
                                 std::size_t min_support = 5);

  /// Adds every (context -> next bit) transition in one participant's
  /// attendance sequence to the pooled counts.
  void observe(std::span<const std::uint8_t> history);

  /// P(attend next | history suffix), via longest sufficiently supported
  /// context; falls back to the global attendance rate.
  [[nodiscard]] double predict(std::span<const std::uint8_t> history) const;

  /// Per-order conditional probabilities [order 1..max_order]; orders with
  /// no support report the global rate. Feature vector for the logistic
  /// stage.
  [[nodiscard]] std::vector<double> order_probs(
      std::span<const std::uint8_t> history) const;

  [[nodiscard]] std::size_t max_order() const { return max_order_; }
  [[nodiscard]] double global_rate() const;

 private:
  struct Counts {
    std::uint64_t misses = 0;
    std::uint64_t attends = 0;
    [[nodiscard]] std::uint64_t total() const { return misses + attends; }
    [[nodiscard]] double rate() const {
      // Laplace smoothing keeps rare contexts away from 0/1.
      return (static_cast<double>(attends) + 1.0) /
             (static_cast<double>(total()) + 2.0);
    }
  };

  /// Encodes (order, bits) as order's bits plus a leading marker bit so
  /// contexts of different lengths never collide.
  [[nodiscard]] static std::uint64_t encode(std::span<const std::uint8_t> bits);

  std::size_t max_order_;
  std::size_t min_support_;
  std::unordered_map<std::uint64_t, Counts> contexts_;
  Counts global_;
};

}  // namespace sb
