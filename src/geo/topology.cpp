#include "geo/topology.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/error.h"

namespace sb {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kFiberKmPerMs = 200.0;  // ~2/3 the speed of light
constexpr double kSwitchingMs = 1.0;
}  // namespace

Topology::Topology(const World& world)
    : node_count_(world.location_count()), adjacency_(node_count_) {
  require(node_count_ > 0, "Topology: world has no locations");
}

LinkId Topology::add_link(LocationId a, LocationId b, double latency_ms,
                          double cost_per_gbps) {
  require(a.valid() && a.value() < node_count_, "add_link: bad endpoint a");
  require(b.valid() && b.value() < node_count_, "add_link: bad endpoint b");
  require(a != b, "add_link: self loop");
  require(latency_ms >= 0.0, "add_link: negative latency");
  require(cost_per_gbps >= 0.0, "add_link: negative cost");
  const LinkId id(static_cast<std::uint32_t>(links_.size()));
  links_.push_back(WanLink{a, b, latency_ms, cost_per_gbps,
                           "L" + std::to_string(id.value())});
  adjacency_[a.value()].emplace_back(b.value(), id);
  adjacency_[b.value()].emplace_back(a.value(), id);
  ready_ = false;
  return id;
}

void Topology::compute_paths() {
  dist_ms_.assign(node_count_ * node_count_, kInf);
  paths_.assign(node_count_ * node_count_, {});

  std::vector<double> dist(node_count_);
  std::vector<LinkId> parent_link(node_count_);
  std::vector<std::uint32_t> parent_node(node_count_);

  for (std::uint32_t src = 0; src < node_count_; ++src) {
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(parent_link.begin(), parent_link.end(), LinkId{});
    dist[src] = 0.0;
    using Item = std::pair<double, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.emplace(0.0, src);
    while (!heap.empty()) {
      const auto [d, node] = heap.top();
      heap.pop();
      if (d > dist[node]) continue;
      for (const auto& [next, link] : adjacency_[node]) {
        const double nd = d + links_[link.value()].latency_ms;
        if (nd < dist[next]) {
          dist[next] = nd;
          parent_link[next] = link;
          parent_node[next] = node;
          heap.emplace(nd, next);
        }
      }
    }
    for (std::uint32_t dst = 0; dst < node_count_; ++dst) {
      const std::size_t idx = src * node_count_ + dst;
      dist_ms_[idx] = dist[dst];
      if (dst == src || dist[dst] == kInf) continue;
      std::vector<LinkId>& path = paths_[idx];
      for (std::uint32_t at = dst; at != src; at = parent_node[at]) {
        path.push_back(parent_link[at]);
      }
      std::reverse(path.begin(), path.end());
    }
  }
  ready_ = true;
}

const WanLink& Topology::link(LinkId id) const {
  require(id.valid() && id.value() < links_.size(), "link: id out of range");
  return links_[id.value()];
}

std::vector<LinkId> Topology::link_ids() const {
  std::vector<LinkId> ids;
  ids.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    ids.push_back(LinkId(static_cast<std::uint32_t>(i)));
  }
  return ids;
}

std::size_t Topology::pair_index(LocationId from, LocationId to) const {
  require(from.valid() && from.value() < node_count_, "bad 'from' node");
  require(to.valid() && to.value() < node_count_, "bad 'to' node");
  return static_cast<std::size_t>(from.value()) * node_count_ + to.value();
}

void Topology::check_ready() const {
  require(ready_, "Topology: call compute_paths() before querying");
}

double Topology::distance_ms(LocationId from, LocationId to) const {
  check_ready();
  const double d = dist_ms_[pair_index(from, to)];
  require(d != kInf, "distance_ms: nodes are disconnected");
  return d;
}

const std::vector<LinkId>& Topology::path(LocationId from, LocationId to) const {
  check_ready();
  const std::size_t idx = pair_index(from, to);
  require(from == to || !paths_[idx].empty() || dist_ms_[idx] != kInf,
          "path: nodes are disconnected");
  return paths_[idx];
}

bool Topology::in_path(LinkId link, LocationId from, LocationId to) const {
  const auto& p = path(from, to);
  return std::find(p.begin(), p.end(), link) != p.end();
}

bool Topology::connected() const {
  require(ready_, "connected: call compute_paths() first");
  for (double d : dist_ms_) {
    if (d == kInf) return false;
  }
  return true;
}

std::vector<LinkId> Topology::incident_links(LocationId node) const {
  require(node.valid() && node.value() < node_count_, "incident_links: bad node");
  std::vector<LinkId> out;
  for (const auto& [_, link] : adjacency_[node.value()]) out.push_back(link);
  return out;
}

Topology build_knn_topology(const World& world, std::size_t k,
                            const LinkCostParams& costs) {
  require(k >= 1, "build_knn_topology: k must be >= 1");
  Topology topo(world);
  const auto& locs = world.locations();
  const std::size_t n = locs.size();

  auto km = [&](std::size_t i, std::size_t j) {
    return geo_distance_km(locs[i].latitude_deg, locs[i].longitude_deg,
                           locs[j].latitude_deg, locs[j].longitude_deg);
  };
  auto link_cost = [&](std::size_t i, std::size_t j) {
    double c = costs.base + costs.per_km * km(i, j);
    if (locs[i].region != locs[j].region) c *= costs.cross_region_multiplier;
    return c;
  };
  auto link_latency = [&](std::size_t i, std::size_t j) {
    return km(i, j) / kFiberKmPerMs + kSwitchingMs;
  };

  std::vector<std::vector<bool>> linked(n, std::vector<bool>(n, false));
  auto connect = [&](std::size_t i, std::size_t j) {
    if (linked[i][j]) return;
    linked[i][j] = linked[j][i] = true;
    topo.add_link(LocationId(static_cast<std::uint32_t>(i)),
                  LocationId(static_cast<std::uint32_t>(j)), link_latency(i, j),
                  link_cost(i, j));
  };

  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::pair<double, std::size_t>> near;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) near.emplace_back(km(i, j), j);
    }
    std::sort(near.begin(), near.end());
    for (std::size_t t = 0; t < std::min(k, near.size()); ++t) {
      connect(i, near[t].second);
    }
  }

  // Bridge disconnected components (possible with clustered geographies):
  // union-find over the links added so far, then join the closest pair
  // across components until one component remains.
  std::vector<std::size_t> root(n);
  for (std::size_t i = 0; i < n; ++i) root[i] = i;
  auto find = [&](std::size_t x) {
    while (root[x] != x) x = root[x] = root[root[x]];
    return x;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (linked[i][j]) root[find(i)] = find(j);
    }
  }
  for (;;) {
    double best = kInf;
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (find(i) != find(j) && km(i, j) < best) {
          best = km(i, j);
          bi = i;
          bj = j;
        }
      }
    }
    if (best == kInf) break;  // single component
    connect(bi, bj);
    root[find(bi)] = find(bj);
  }

  topo.compute_paths();
  return topo;
}

}  // namespace sb
