file(REMOVE_RECURSE
  "CMakeFiles/sb_baselines.dir/locality_first.cpp.o"
  "CMakeFiles/sb_baselines.dir/locality_first.cpp.o.d"
  "CMakeFiles/sb_baselines.dir/round_robin.cpp.o"
  "CMakeFiles/sb_baselines.dir/round_robin.cpp.o.d"
  "libsb_baselines.a"
  "libsb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
