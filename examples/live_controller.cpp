// Live controller: runs the full Switchboard loop the way the service
// would — provision for the day, build the allocation plan, then replay a
// synthetic busy window through the realtime selector via the
// discrete-event simulator, reporting latency, migrations, and how realized
// usage compares with what was provisioned.
//
// With --fail-dc the replay injects a DC outage mid-window: the controller
// marks the DC down, drains its live calls onto surviving plan slots and
// provisioned backup capacity, and the report shows the failover migration
// and drop counts plus the post-failure usage of the survivors.
//
// With --servers-per-dc=N each DC is split into a fleet of N media servers
// and every frozen call is bin-packed onto one of them (the intra-DC
// packing layer); the report grows a per-server table of realized peak vs
// physical capacity vs the provisioner's per-server budget split.
// --fail-server=DC-India-ms0 injects a single-server outage (reusing
// --fail-at/--recover-after) and the drain_server tier ladder re-homes the
// server's calls onto siblings before spilling cross-DC.
//
// With --workers=N the realtime path runs under the sb_cluster control
// plane: N controller workers each own a contiguous range of call shards,
// mirror every lifecycle event into the KV write-ahead log, and advertise
// liveness through TTL leases. --kill-worker=W crashes one worker
// mid-window (--kill-at, --restart-after, in hours like --fail-at): its
// shards are re-adopted by survivors via WAL replay at a bumped epoch, and
// the report grows a per-worker shard-ownership table plus the cluster's
// takeover/replay counters. A worker crash never drops or moves a call —
// the headline metrics must match the single-process run exactly.
//
// Flags: --hours=4 --configs=30
//        --fail-dc=Tokyo --fail-at=1.5 --recover-after=1
//        (fail-at/recover-after in hours from the replay window start)
//        --servers-per-dc=4 --server-cores=2 --fail-server=DC-India-ms0
//        --workers=4 --kill-worker=0 --kill-at=1.5 --restart-after=1
//        --lease-ttl=120           worker lease TTL in sim seconds
//        --trace-out=trace.json    Chrome trace-event span dump (Perfetto)
//        --metrics-out=metrics.json  final MetricsRegistry snapshot
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "cluster/allocator.h"
#include "cluster/controller.h"
#include "common/table.h"
#include "core/controller.h"
#include "fault/fault_schedule.h"
#include "geo/world_presets.h"
#include "obs/snapshot.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "sim/simulator.h"
#include "trace/scenario.h"

namespace {

double flag(int argc, char** argv, const std::string& name, double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtod(arg.c_str() + prefix.size(), nullptr);
    }
  }
  return fallback;
}

std::string string_flag(int argc, char** argv, const std::string& name,
                        const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sb;
  const double hours = flag(argc, argv, "hours", 4.0);
  const auto configs = static_cast<std::size_t>(flag(argc, argv, "configs", 30));
  const std::string fail_dc_name = string_flag(argc, argv, "fail-dc", "");
  const double fail_at_h = flag(argc, argv, "fail-at", 1.0);
  const double recover_after_h = flag(argc, argv, "recover-after", 1.0);
  const auto servers_per_dc =
      static_cast<std::size_t>(flag(argc, argv, "servers-per-dc", 0));
  const double server_cores = flag(argc, argv, "server-cores", 2.0);
  const std::string fail_server_name =
      string_flag(argc, argv, "fail-server", "");
  const auto workers = static_cast<std::size_t>(flag(argc, argv, "workers", 0));
  const int kill_worker = static_cast<int>(flag(argc, argv, "kill-worker", -1));
  const double kill_at_h = flag(argc, argv, "kill-at", 1.0);
  const double restart_after_h = flag(argc, argv, "restart-after", 0.5);
  const double lease_ttl_s = flag(argc, argv, "lease-ttl", 120.0);
  const std::string trace_out = string_flag(argc, argv, "trace-out", "");
  const std::string metrics_out = string_flag(argc, argv, "metrics-out", "");
  // No trace requested -> don't pay for span recording at all.
  obs::SpanRecorder::global().set_enabled(!trace_out.empty());

  Scenario scenario = make_apac_scenario();
  // The fleet must exist before the controller is built: the selector and
  // its health table size themselves from the world's server registry.
  if (servers_per_dc > 0) {
    add_uniform_fleet(scenario.geo->world, servers_per_dc, server_cores);
  }
  const LoadModel loads = LoadModel::paper_default();
  const EvalContext ctx{&scenario.world(), &scenario.topology(),
                        &scenario.latency(), scenario.registry.get(), &loads};
  const World& world = scenario.world();

  ServerId fail_server;
  if (!fail_server_name.empty()) {
    const auto found = world.find_server(fail_server_name);
    if (!found) {
      std::cerr << "unknown --fail-server '" << fail_server_name
                << "' (use --servers-per-dc=N; names are <DC>-ms<i>)\n";
      return 1;
    }
    fail_server = *found;
  }

  DcId fail_dc;
  if (!fail_dc_name.empty()) {
    for (DcId dc : world.dc_ids()) {
      if (world.datacenter(dc).name == fail_dc_name) fail_dc = dc;
    }
    if (!fail_dc.valid()) {
      std::cerr << "unknown --fail-dc '" << fail_dc_name << "'; DCs:";
      for (DcId dc : world.dc_ids()) {
        std::cerr << ' ' << world.datacenter(dc).name;
      }
      std::cerr << '\n';
      return 1;
    }
  }

  // Offline stage: provision and plan for the day (top-K configs, with a
  // §5.2 cushion so realized Poisson load fits the plan's slots).
  DemandMatrix full = scenario.trace->expected_demand(
      3600.0, kSecondsPerDay, 2 * kSecondsPerDay);
  std::vector<ConfigId> top;
  for (std::size_t i = 0; i < std::min(configs, full.config_count()); ++i) {
    top.push_back(full.config_at(i));
  }
  DemandMatrix demand = make_demand_matrix(top, full.slot_count());
  for (TimeSlot t = 0; t < full.slot_count(); ++t) {
    for (std::size_t c = 0; c < top.size(); ++c) {
      demand.set_demand(t, c, full.demand(t, c) * 1.3);
    }
  }

  if (kill_worker >= 0 &&
      (workers == 0 || static_cast<std::size_t>(kill_worker) >= workers)) {
    std::cerr << "--kill-worker=" << kill_worker
              << " needs --workers=N with N > " << kill_worker << "\n";
    return 1;
  }

  ControllerOptions options;
  options.provision.include_link_failures = false;  // keep the demo quick
  options.slot_s = 3600.0;
  options.worker_rows = workers;  // health rows for the cluster layer
  Switchboard controller(ctx, options);
  std::cout << "provisioning (" << world.dc_count() << " DCs)...\n";
  const ProvisionResult& provision = controller.provision(demand);
  std::cout << "building the day's allocation plan...\n\n";
  controller.build_allocation_plan(demand, kSecondsPerDay);

  // Realtime stage: replay a busy window.
  const double start = kSecondsPerDay + 2.0 * kSecondsPerHour;
  const CallRecordDatabase db =
      scenario.trace->generate(start, start + hours * kSecondsPerHour);
  std::cout << "replaying " << db.size() << " calls over "
            << format_double(hours, 1) << " h";

  fault::FaultSchedule faults;
  if (fail_dc.valid()) {
    const SimTime fail_at = start + fail_at_h * kSecondsPerHour;
    faults.fail_dc(fail_dc, fail_at, recover_after_h * kSecondsPerHour);
    std::cout << " (failing " << fail_dc_name << " at +"
              << format_double(fail_at_h, 1) << " h for "
              << format_double(recover_after_h, 1) << " h)";
  }
  if (fail_server.valid()) {
    const SimTime fail_at = start + fail_at_h * kSecondsPerHour;
    faults.fail_server(fail_server, fail_at,
                       recover_after_h * kSecondsPerHour);
    std::cout << " (failing server " << fail_server_name << " at +"
              << format_double(fail_at_h, 1) << " h for "
              << format_double(recover_after_h, 1) << " h)";
  }
  if (kill_worker >= 0) {
    const SimTime kill_at = start + kill_at_h * kSecondsPerHour;
    faults.fail_worker(WorkerId(static_cast<std::uint32_t>(kill_worker)),
                       kill_at, restart_after_h * kSecondsPerHour);
    std::cout << " (killing worker " << kill_worker << " at +"
              << format_double(kill_at_h, 1) << " h, restart after "
              << format_double(restart_after_h, 1) << " h)";
  }
  std::cout << "...\n\n";

  // With --workers the realtime events flow through the sb_cluster facade
  // (shard routing + leases + WAL) instead of the Switchboard directly.
  std::unique_ptr<cluster::ClusterController> cl;
  std::unique_ptr<cluster::ClusterAllocator> cluster_allocator;
  ControllerAllocator direct_allocator(controller);
  CallAllocator* allocator = &direct_allocator;
  if (workers > 0) {
    cl = std::make_unique<cluster::ClusterController>(
        controller,
        cluster::ClusterOptions{.workers = workers, .lease_ttl_s = lease_ttl_s});
    cluster_allocator = std::make_unique<cluster::ClusterAllocator>(*cl);
    allocator = cluster_allocator.get();
  }

  Simulator sim(ctx);
  const SimReport report =
      sim.run(db, *allocator, 300.0, faults.empty() ? nullptr : &faults);

  TextTable table({"metric", "value"});
  table.row().cell("calls served").cell(static_cast<std::uint64_t>(report.calls));
  table.row().cell("peak concurrent calls").cell(report.peak_concurrent_calls);
  table.row().cell("mean ACL (ms)").cell(report.mean_acl_ms, 1);
  table.row()
      .cell("migrations")
      .cell(std::to_string(report.migrations) + " (" +
            format_double(100.0 * report.migration_fraction, 2) + "%)");
  table.row()
      .cell("first joiner in majority country")
      .cell(format_double(100.0 * report.first_joiner_majority_fraction, 1) +
            "%");
  if (fail_dc.valid() || fail_server.valid()) {
    table.row().cell("failover migrations").cell(report.failover_migrations);
    table.row().cell("dropped calls").cell(report.dropped_calls);
  }
  std::cout << table;

  print_banner(std::cout, "realized peak usage vs provisioned capacity");
  TextTable usage({"DC", "realized cores", "provisioned", "headroom"});
  for (DcId dc : world.dc_ids()) {
    const double realized = report.dc_peak_cores[dc.value()];
    const double provisioned = provision.capacity.dc_total_cores(dc);
    usage.row()
        .cell(world.datacenter(dc).name +
              (dc == fail_dc ? std::string(" (failed)") : std::string()))
        .cell(realized, 1)
        .cell(provisioned, 1)
        .cell(provisioned > 0.01
                  ? format_double(100.0 * (1.0 - realized / provisioned), 0) +
                        "%"
                  : "n/a");
  }
  std::cout << usage;

  if (world.server_count() > 0) {
    print_banner(std::cout, "per-server packing (realized peak vs physical "
                            "capacity vs provisioned budget split)");
    TextTable fleet({"server", "realized cores", "capacity",
                     "provisioned budget"});
    for (ServerId s : world.server_ids()) {
      const bool failed = s == fail_server;
      fleet.row()
          .cell(world.server(s).name +
                (failed ? std::string(" (failed)") : std::string()))
          .cell(report.server_peak_cores.empty()
                    ? 0.0
                    : report.server_peak_cores[s.value()],
                2)
          .cell(world.server(s).cores, 2)
          .cell(provision.server_budget_cores.empty()
                    ? 0.0
                    : provision.server_budget_cores[s.value()],
                2);
    }
    std::cout << fleet;
  }

  if (cl != nullptr) {
    print_banner(std::cout, "cluster control plane (per-worker shard "
                            "ownership after the run)");
    TextTable wtab({"worker", "state", "initial shards", "owns now",
                    "events", "adopted", "kills/restarts"});
    for (const cluster::WorkerStatus& w : cl->worker_table()) {
      wtab.row()
          .cell("worker-" + std::to_string(w.id.value()))
          .cell(w.alive ? "alive" : "down")
          .cell("[" + std::to_string(w.initial_begin) + ", " +
                std::to_string(w.initial_end) + ")")
          .cell(w.shards_owned)
          .cell(w.events_applied)
          .cell(w.takeovers)
          .cell(std::to_string(w.kills) + "/" + std::to_string(w.restarts));
    }
    std::cout << wtab;
    const cluster::ClusterStats cs = cl->stats();
    std::cout << "epoch " << cl->epoch() << ", WAL records live "
              << cl->wal_size() << ", takeovers "
              << cs.takeovers_expedited << " expedited / " << cs.takeovers_ttl
              << " lease-expiry, WAL records replayed " << cs.replayed_records
              << ", lease renewals " << cs.lease_renewals
              << ", stale events fenced " << cs.stale_events_fenced << "\n";
  }

  std::cout << "\n(headroom is expected: capacity also covers the day's "
               "other peaks, failure scenarios, and the planning cushion; "
               "small negative headroom comes from long-tail configs the "
               "top-K plan does not cover, which §5.2's cushion absorbs in "
               "production)\n";

  if (!trace_out.empty()) {
    std::uint64_t dropped = 0;
    if (obs::dump_chrome_trace(trace_out, &dropped)) {
      std::cout << "\ntrace written to " << trace_out
                << (dropped > 0 ? " (ring wrapped; oldest spans dropped)" : "")
                << "\n";
    } else {
      std::cerr << "cannot write " << trace_out << "\n";
    }
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (out) {
      obs::MetricsRegistry::global().snapshot().write_json(out);
      std::cout << "metrics written to " << metrics_out << "\n";
    } else {
      std::cerr << "cannot write " << metrics_out << "\n";
    }
  }
  return 0;
}
