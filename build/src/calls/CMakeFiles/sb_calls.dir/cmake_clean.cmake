file(REMOVE_RECURSE
  "CMakeFiles/sb_calls.dir/acl.cpp.o"
  "CMakeFiles/sb_calls.dir/acl.cpp.o.d"
  "CMakeFiles/sb_calls.dir/call_config.cpp.o"
  "CMakeFiles/sb_calls.dir/call_config.cpp.o.d"
  "CMakeFiles/sb_calls.dir/call_record.cpp.o"
  "CMakeFiles/sb_calls.dir/call_record.cpp.o.d"
  "CMakeFiles/sb_calls.dir/demand.cpp.o"
  "CMakeFiles/sb_calls.dir/demand.cpp.o.d"
  "CMakeFiles/sb_calls.dir/io.cpp.o"
  "CMakeFiles/sb_calls.dir/io.cpp.o.d"
  "CMakeFiles/sb_calls.dir/media.cpp.o"
  "CMakeFiles/sb_calls.dir/media.cpp.o.d"
  "libsb_calls.a"
  "libsb_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
