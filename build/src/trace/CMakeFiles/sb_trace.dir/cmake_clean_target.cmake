file(REMOVE_RECURSE
  "libsb_trace.a"
)
