// Demand schedules: piecewise-constant multipliers over a call trace, the
// closed-loop counterpart of fault::FaultSchedule. Where a fault schedule
// perturbs the SUPPLY side (DCs/links/servers going down), a demand
// schedule perturbs the LOAD side — flash crowds the forecast never saw.
// Two first-class shapes back the flash-crowd benchmarks and fuzz draws:
//   - viral_spike: a stepped global ramp to a peak multiplier, a hold, and
//     a stepped decay (a link going viral);
//   - regional_rebound: one region's demand collapses during an outage
//     window and rebounds ABOVE baseline right after recovery (everyone
//     redials at once) — the demand-side echo of a DC fault.
// scale_trace() applies a schedule to a CallRecordDatabase by thinning
// (multiplier < 1) or duplicating (multiplier >= 1) records, deterministic
// in the seed, so the scaled trace replays through the unmodified
// simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "calls/call_record.h"
#include "common/types.h"

namespace sb::loop {

/// One multiplicative phase. Phases covering the same instant compose by
/// multiplication; an instant covered by no phase has multiplier 1.
struct DemandPhase {
  SimTime start_s = 0.0;
  SimTime end_s = 0.0;   ///< half-open: [start_s, end_s)
  double multiplier = 1.0;
  /// When valid, the phase applies only to calls whose first joiner is at
  /// this location (regional shapes); invalid = global.
  LocationId location;
};

class DemandSchedule {
 public:
  DemandSchedule() = default;
  explicit DemandSchedule(std::vector<DemandPhase> phases)
      : phases_(std::move(phases)) {}

  void add_phase(DemandPhase phase) { phases_.push_back(phase); }
  [[nodiscard]] const std::vector<DemandPhase>& phases() const {
    return phases_;
  }
  [[nodiscard]] bool empty() const { return phases_.empty(); }

  /// Product of all phases covering `t` whose location matches `first`
  /// (global phases always match). 1.0 outside every phase.
  [[nodiscard]] double multiplier_at(SimTime t, LocationId first) const;

  /// A global flash crowd: multiplier ramps 1 -> `peak` in `steps` equal
  /// stair steps over [start_s, start_s + ramp_s), holds at `peak` for
  /// `hold_s`, then steps back down to 1 over `decay_s`.
  [[nodiscard]] static DemandSchedule viral_spike(SimTime start_s,
                                                  double ramp_s, double peak,
                                                  double hold_s,
                                                  double decay_s,
                                                  std::size_t steps = 4);

  /// A regional outage echo: `location`'s demand drops to `outage_mult`
  /// (users can't connect) over [fail_s, recover_s), then rebounds to
  /// `rebound_mult` (> 1: everyone redials) for `rebound_s` after recovery.
  [[nodiscard]] static DemandSchedule regional_rebound(
      LocationId location, SimTime fail_s, SimTime recover_s,
      double outage_mult, double rebound_mult, double rebound_s);

  /// Applies the schedule to a trace. Each record's multiplier m is taken
  /// at its start time and first-joiner location: m < 1 keeps the record
  /// with probability m (thinning); m >= 1 keeps it and adds floor(m - 1)
  /// copies plus one more with probability frac(m - 1), each copy under a
  /// fresh unique CallId (ids above the input's maximum) and its start
  /// jittered uniformly in [0, jitter_s). Deterministic in `seed`.
  [[nodiscard]] CallRecordDatabase scale_trace(const CallRecordDatabase& db,
                                               std::uint64_t seed,
                                               double jitter_s = 0.0) const;

 private:
  std::vector<DemandPhase> phases_;
};

}  // namespace sb::loop
