file(REMOVE_RECURSE
  "libsb_baselines.a"
)
