# Empty compiler generated dependencies file for table4_forecast_gap.
# This may be replaced when dependencies are built.
