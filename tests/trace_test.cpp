// Tests for diurnal shapes, the config-universe sampler, and the trace
// generator — including the structural properties the paper's figures rely
// on (time-shifted peaks, popularity skew, join-offset P80, first-joiner
// majority rate).
#include <gtest/gtest.h>

#include <algorithm>

#include "trace/scenario.h"

namespace sb {
namespace {

TEST(DiurnalTest, BusinessHoursPeakAndNightTrough) {
  const DiurnalShape shape;
  Location loc{"X", 0, 0, 0.0, 1.0, "R"};
  const double peak = shape.activity(loc, 10.0 * kSecondsPerHour);
  const double night = shape.activity(loc, 3.0 * kSecondsPerHour);
  EXPECT_GT(peak, 0.9);
  EXPECT_LT(night, 0.2);
}

TEST(DiurnalTest, PeaksShiftWithUtcOffset) {
  // The Fig 3 effect: a +9 h location (Japan) peaks ~9 UTC hours before a
  // +0 h location.
  const DiurnalShape shape;
  Location jp{"JP", 0, 0, 9.0, 1.0, "R"};
  Location uk{"UK", 0, 0, 0.0, 1.0, "R"};
  // 10:00 local in Japan is 01:00 UTC.
  EXPECT_GT(shape.activity(jp, 1.0 * kSecondsPerHour), 0.9);
  EXPECT_LT(shape.activity(uk, 1.0 * kSecondsPerHour), 0.2);
}

TEST(DiurnalTest, WeekendDamping) {
  const DiurnalShape shape;
  Location loc{"X", 0, 0, 0.0, 1.0, "R"};
  const double monday = shape.activity(loc, 10.0 * kSecondsPerHour);
  const double saturday =
      shape.activity(loc, 5 * kSecondsPerDay + 10.0 * kSecondsPerHour);
  EXPECT_NEAR(saturday / monday, shape.params().weekend_factor, 1e-9);
  EXPECT_FALSE(is_local_weekend(loc, 4 * kSecondsPerDay));
  EXPECT_TRUE(is_local_weekend(loc, 5 * kSecondsPerDay + 1.0));
}

TEST(DiurnalTest, LocalHourWrapsOffsets) {
  Location east{"E", 0, 0, 12.0, 1.0, "R"};
  EXPECT_NEAR(local_hour_of_day(east, 20.0 * kSecondsPerHour), 8.0, 1e-9);
  Location west{"W", 0, 0, -5.5, 1.0, "R"};
  EXPECT_NEAR(local_hour_of_day(west, 2.0 * kSecondsPerHour), 20.5, 1e-9);
}

class ApacScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { scenario_ = new Scenario(make_apac_scenario()); }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static Scenario* scenario_;
};
Scenario* ApacScenarioTest::scenario_ = nullptr;

TEST_F(ApacScenarioTest, UniverseIsZipfSkewed) {
  const ConfigUniverse& universe = scenario_->trace->universe();
  ASSERT_GT(universe.configs.size(), 50u);
  // Sorted by rate descending.
  for (std::size_t i = 1; i < universe.configs.size(); ++i) {
    EXPECT_GE(universe.configs[i - 1].base_rate_per_hour,
              universe.configs[i].base_rate_per_hour);
  }
  // Fig 7(c) shape: a small head covers most of the call volume.
  const double total = universe.total_base_rate();
  double head = 0.0;
  const std::size_t head_count = universe.configs.size() / 20;  // top 5%
  for (std::size_t i = 0; i < head_count; ++i) {
    head += universe.configs[i].base_rate_per_hour;
  }
  EXPECT_GT(head / total, 0.5);
}

TEST_F(ApacScenarioTest, ExpectedDemandFollowsHomeDiurnal) {
  // Demand for a config homed in Japan should peak when Japan's business
  // day peaks (around 00:00-02:00 UTC), not during India's peak.
  const TraceGenerator& trace = *scenario_->trace;
  const LocationId jp = *scenario_->world().find_location("JP");
  std::size_t jp_cfg = trace.universe().configs.size();
  for (std::size_t i = 0; i < trace.universe().configs.size(); ++i) {
    if (trace.universe().configs[i].home == jp) {
      jp_cfg = i;
      break;
    }
  }
  ASSERT_LT(jp_cfg, trace.universe().configs.size());
  const double at_jp_peak =
      trace.rate_per_hour(jp_cfg, 1.0 * kSecondsPerHour);  // 10:00 JST
  const double at_jp_night =
      trace.rate_per_hour(jp_cfg, 16.0 * kSecondsPerHour);  // 01:00 JST
  EXPECT_GT(at_jp_peak, 3.0 * at_jp_night);
}

TEST_F(ApacScenarioTest, ArrivalSeriesIsWindowInvariant) {
  const TraceGenerator& trace = *scenario_->trace;
  const auto full = trace.arrival_count_series(0, 0.0, 6 * 1800.0);
  const auto tail = trace.arrival_count_series(0, 2 * 1800.0, 6 * 1800.0);
  ASSERT_EQ(full.size(), 6u);
  ASSERT_EQ(tail.size(), 4u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_DOUBLE_EQ(tail[i], full[i + 2]);
  }
}

TEST_F(ApacScenarioTest, GeneratedRecordsMatchStructuralTargets) {
  const TraceGenerator& trace = *scenario_->trace;
  // One workday window (Tuesday) so rates are substantial.
  const double start = kSecondsPerDay;
  const double end = 2 * kSecondsPerDay;
  const CallRecordDatabase db = trace.generate(start, end);
  ASSERT_GT(db.size(), 1000u);

  std::size_t majority_first = 0;
  for (const CallRecord& r : db.records()) {
    EXPECT_GE(r.start_s, start);
    EXPECT_LT(r.start_s, end);
    EXPECT_GE(r.duration_s, 60.0);
    const CallConfig& config = scenario_->registry->get(r.config);
    EXPECT_EQ(r.legs.size(), config.total_participants());
    EXPECT_DOUBLE_EQ(r.legs.front().join_offset_s, 0.0);
    if (r.legs.front().location == config.majority_location()) {
      ++majority_first;
    }
  }
  // §5.4: 95.2% of ALL calls have the first joiner in the majority country.
  EXPECT_NEAR(static_cast<double>(majority_first) / db.size(), 0.952, 0.02);

  // Fig 8: ~80% of participants joined within 300 s.
  const auto offsets = db.join_offsets();
  std::size_t within = 0;
  for (double o : offsets) {
    if (o <= 300.0) ++within;
  }
  EXPECT_NEAR(static_cast<double>(within) / offsets.size(), 0.80, 0.04);
}

TEST_F(ApacScenarioTest, ExpectedDemandMatchesGeneratedConcurrency) {
  const TraceGenerator& trace = *scenario_->trace;
  const double start = kSecondsPerDay;
  const double end = 2 * kSecondsPerDay;
  const DemandMatrix expected = trace.expected_demand(1800.0, start, end);
  const CallRecordDatabase db = trace.generate(start, end);
  const DemandMatrix realized = DemandMatrix::from_records(
      db, expected.configs(), 1800.0, start, end);
  // Aggregate concurrency should agree within sampling noise (edge effects:
  // calls started before the window are absent from the realized matrix).
  EXPECT_NEAR(realized.total() / expected.total(), 1.0, 0.15);
}

TEST(UniverseSamplerTest, RespectsMediaMixAndMultiCountryShare) {
  const GeoModel apac = make_apac_world();
  CallConfigRegistry registry;
  Rng rng(99);
  UniverseParams params;
  params.config_count = 600;
  const ConfigUniverse universe =
      sample_universe(apac.world, registry, params, rng);
  std::size_t multi = 0;
  for (const ConfigUsage& u : universe.configs) {
    if (!registry.get(u.config).single_location()) ++multi;
  }
  const double multi_rate =
      static_cast<double>(multi) / universe.configs.size();
  EXPECT_GT(multi_rate, 0.05);
  EXPECT_LT(multi_rate, 0.40);
  // Total base rate is conserved by merging.
  EXPECT_NEAR(universe.total_base_rate(), params.total_peak_rate_per_hour,
              1e-6);
}

// Regression for an iteration-order dependence: with zipf_exponent = 0
// every rank gets the same rate, so the sampler's rate sort is ALL ties.
// The ConfigId tie-break must make the universe order a strict total order
// (not whatever order the merge map iterated in), so two identically-seeded
// samples — and the traces generated from them — are byte-identical.
TEST(UniverseSamplerTest, EqualRateTiesOrderDeterministically) {
  const GeoModel apac = make_apac_world();
  UniverseParams params;
  params.config_count = 300;
  params.zipf_exponent = 0.0;  // maximal rate ties
  CallConfigRegistry reg_a;
  CallConfigRegistry reg_b;
  Rng rng_a(77);
  Rng rng_b(77);
  const ConfigUniverse a = sample_universe(apac.world, reg_a, params, rng_a);
  const ConfigUniverse b = sample_universe(apac.world, reg_b, params, rng_b);
  ASSERT_EQ(a.configs.size(), b.configs.size());
  for (std::size_t i = 0; i < a.configs.size(); ++i) {
    EXPECT_EQ(a.configs[i].config, b.configs[i].config) << "index " << i;
    EXPECT_DOUBLE_EQ(a.configs[i].base_rate_per_hour,
                     b.configs[i].base_rate_per_hour);
  }
  // Strict total order: rate descending, ConfigId ascending on equal rates.
  for (std::size_t i = 1; i < a.configs.size(); ++i) {
    const ConfigUsage& prev = a.configs[i - 1];
    const ConfigUsage& cur = a.configs[i];
    EXPECT_TRUE(prev.base_rate_per_hour > cur.base_rate_per_hour ||
                (prev.base_rate_per_hour == cur.base_rate_per_hour &&
                 prev.config.value() < cur.config.value()))
        << "universe order not strict at index " << i;
  }
  // And the downstream traces agree event for event.
  const TraceGenerator gen_a(apac.world, reg_a, a, DiurnalShape{}, {}, 5);
  const TraceGenerator gen_b(apac.world, reg_b, b, DiurnalShape{}, {}, 5);
  const CallRecordDatabase db_a = gen_a.generate(0.0, kSecondsPerDay / 4);
  const CallRecordDatabase db_b = gen_b.generate(0.0, kSecondsPerDay / 4);
  ASSERT_EQ(db_a.size(), db_b.size());
  for (std::size_t i = 0; i < db_a.size(); ++i) {
    EXPECT_EQ(db_a.records()[i].config, db_b.records()[i].config);
    EXPECT_DOUBLE_EQ(db_a.records()[i].start_s, db_b.records()[i].start_s);
  }
}

}  // namespace
}  // namespace sb
