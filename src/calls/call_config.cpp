#include "calls/call_config.h"

#include <algorithm>

#include "common/error.h"
#include "geo/world.h"

namespace sb {

CallConfig CallConfig::make(std::vector<ConfigEntry> entries, MediaType media) {
  require(!entries.empty(), "CallConfig: need at least one entry");
  std::sort(entries.begin(), entries.end(),
            [](const ConfigEntry& a, const ConfigEntry& b) {
              return a.location < b.location;
            });
  std::vector<ConfigEntry> merged;
  for (const ConfigEntry& e : entries) {
    require(e.location.valid(), "CallConfig: invalid location");
    require(e.count > 0, "CallConfig: zero participant count");
    if (!merged.empty() && merged.back().location == e.location) {
      merged.back().count += e.count;
    } else {
      merged.push_back(e);
    }
  }
  return CallConfig(std::move(merged), media);
}

std::uint32_t CallConfig::total_participants() const {
  std::uint32_t total = 0;
  for (const ConfigEntry& e : entries_) total += e.count;
  return total;
}

LocationId CallConfig::majority_location() const {
  LocationId best = entries_.front().location;
  std::uint32_t best_count = entries_.front().count;
  for (const ConfigEntry& e : entries_) {
    if (e.count > best_count) {
      best = e.location;
      best_count = e.count;
    }
  }
  return best;
}

std::string CallConfig::describe(const World& world) const {
  std::string out = "((";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += ',';
    out += world.location(entries_[i].location).name;
    out += '-';
    out += std::to_string(entries_[i].count);
  }
  out += "),";
  out += to_string(media_);
  out += ')';
  return out;
}

std::size_t CallConfig::hash() const {
  std::size_t h = static_cast<std::size_t>(media_) * 0x9e3779b97f4a7c15ULL;
  for (const ConfigEntry& e : entries_) {
    h ^= (static_cast<std::size_t>(e.location.value()) << 17) ^ e.count;
    h *= 0x9e3779b97f4a7c15ULL;
  }
  return h;
}

ConfigId CallConfigRegistry::intern(const CallConfig& config) {
  if (const ConfigId existing = find(config); existing.valid()) {
    return existing;
  }
  const ConfigId id(static_cast<std::uint32_t>(configs_.size()));
  configs_.push_back(config);
  index_.emplace(config, id);
  return id;
}

ConfigId CallConfigRegistry::find(const CallConfig& config) const {
  const auto it = index_.find(config);
  return it == index_.end() ? ConfigId{} : it->second;
}

const CallConfig& CallConfigRegistry::get(ConfigId id) const {
  require(id.valid() && id.value() < configs_.size(),
          "CallConfigRegistry::get: id out of range");
  return configs_[id.value()];
}

std::vector<ConfigId> CallConfigRegistry::ids() const {
  std::vector<ConfigId> out;
  out.reserve(configs_.size());
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    out.push_back(ConfigId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

}  // namespace sb
