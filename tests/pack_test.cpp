// Unit + integration tests for the intra-DC server packing layer (label:
// pack): deterministic best-fit admits with exact millicore accounting,
// the anti-fragmentation empty-server penalty, fail-open overflow, the
// drain_server tier ordering (sibling re-pack -> cross-DC spill ->
// overflow -> drop), defragmentation, and an 8-thread start/freeze/end
// stress that must leave every server's occupancy exactly zero.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/realtime.h"
#include "fault/health_table.h"
#include "pack/packer.h"

namespace sb {
namespace {

/// Two single-location regions, two DCs, three media servers (two under
/// DC-A, one under DC-B). Audio costs 1.0 core/participant, so a
/// two-participant audio config has a 2.0-core footprint.
struct PackedWorld {
  World world;
  Topology topology;
  LatencyMatrix latency;
  CallConfigRegistry registry;
  LoadModel loads{{1.0, 1.5, 3.0}, {1.0, 15.0, 35.0}};

  explicit PackedWorld(double a0 = 4.0, double a1 = 4.0, double b0 = 4.0)
      : world(make_world(a0, a1, b0)), topology(world), latency(2, 2) {
    topology.add_link(LocationId(0), LocationId(1), 15.0, 10.0);
    topology.compute_paths();
    latency = LatencyMatrix::from_topology(world, topology, 8.0);
  }

  static World make_world(double a0, double a1, double b0) {
    World w;
    w.add_location({"A", 0.0, 0.0, 0.0, 1.0, "R"});
    w.add_location({"B", 0.0, 8.0, 1.0, 1.0, "R"});
    w.add_datacenter({"DC-A", LocationId(0), 1.0});
    w.add_datacenter({"DC-B", LocationId(1), 1.0});
    w.add_server({"A-ms0", DcId(0), a0});
    w.add_server({"A-ms1", DcId(0), a1});
    w.add_server({"B-ms0", DcId(1), b0});
    return w;
  }

  [[nodiscard]] EvalContext ctx() {
    return EvalContext{&world, &topology, &latency, &registry, &loads};
  }
};

TEST(PackerTest, BestFitBeatsFirstFitOnThePlantedShape) {
  // Servers of 10 cores each, preloaded 3 and 8. Best-fit sends the next
  // 2-core item to the fuller server (residual 0 beats residual 5), which
  // leaves exactly 7 on the other — both items place bounded. First-fit
  // would put the 2 on server 0 and then have no room for the 7 anywhere.
  World w = PackedWorld::make_world(10.0, 10.0, 10.0);
  pack::ServerPacker packer(w);
  ASSERT_TRUE(packer.try_admit_to(ServerId(0), 3.0));
  ASSERT_TRUE(packer.try_admit_to(ServerId(1), 8.0));

  EXPECT_EQ(packer.admit(DcId(0), 2.0), ServerId(1));
  EXPECT_EQ(packer.admit(DcId(0), 7.0), ServerId(0));
  EXPECT_EQ(packer.overcommit_admits(), 0u);
  EXPECT_DOUBLE_EQ(packer.server_cores_used(ServerId(0)), 10.0);
  EXPECT_DOUBLE_EQ(packer.server_cores_used(ServerId(1)), 10.0);
}

TEST(PackerTest, EmptyServerPenaltyConsolidatesOntoWarmServers) {
  // Raw best-fit favors the empty 9.4-core server (residual 9.2 vs 9.3);
  // the 0.25-core empty penalty tips the choice to the warm server.
  World w = PackedWorld::make_world(10.0, 9.4, 10.0);
  {
    pack::ServerPacker packer(w);
    ASSERT_TRUE(packer.try_admit_to(ServerId(0), 0.5));
    EXPECT_EQ(packer.admit(DcId(0), 0.2), ServerId(0));
  }
  {
    pack::PackOptions no_penalty;
    no_penalty.anti_frag_empty_penalty_cores = 0.0;
    pack::ServerPacker packer(w, no_penalty);
    ASSERT_TRUE(packer.try_admit_to(ServerId(0), 0.5));
    EXPECT_EQ(packer.admit(DcId(0), 0.2), ServerId(1));
  }
}

TEST(PackerTest, AdmitFailsOpenWithOvercommitWhenFleetIsFull) {
  World w = PackedWorld::make_world(1.0, 1.0, 1.0);
  pack::ServerPacker packer(w);
  const ServerId first = packer.admit(DcId(0), 0.8);
  EXPECT_TRUE(first.valid());
  const ServerId second = packer.admit(DcId(0), 0.8);
  EXPECT_TRUE(second.valid());          // bounded fit on the other server
  EXPECT_NE(first, second);
  const ServerId third = packer.admit(DcId(0), 0.8);
  EXPECT_TRUE(third.valid());           // fail-open: overcommitted
  EXPECT_EQ(packer.overcommit_admits(), 1u);

  packer.release(first, 0.8);
  packer.release(second, 0.8);
  packer.release(third, 0.8);
  for (const pack::ServerStats& s : packer.stats()) {
    EXPECT_DOUBLE_EQ(s.used_cores, 0.0);
    EXPECT_EQ(s.admitted_mc, s.released_mc);
  }
}

TEST(PackerTest, ExactMillicoreConservation) {
  World w = PackedWorld::make_world(4.0, 4.0, 4.0);
  pack::ServerPacker packer(w);
  // 0.0333.. cores does not round-trip through doubles; the millicore
  // quantization must make admit and release agree bit-exactly anyway.
  const double odd = 1.0 / 30.0;
  std::vector<ServerId> placed;
  for (int i = 0; i < 50; ++i) placed.push_back(packer.admit(DcId(0), odd));
  for (const ServerId s : placed) packer.release(s, odd);
  for (const pack::ServerStats& s : packer.stats()) {
    EXPECT_EQ(pack::to_millicores(s.used_cores), 0);
    EXPECT_EQ(s.admitted_mc, s.released_mc);
  }
}

TEST(PackerTest, SingleThreadedAdmitSequenceIsDeterministic) {
  World w = PackedWorld::make_world(3.0, 2.0, 4.0);
  const double sizes[] = {0.7, 1.3, 0.2, 2.0, 0.5, 0.9, 1.1, 0.4};
  std::vector<ServerId> first_run;
  for (int run = 0; run < 2; ++run) {
    pack::ServerPacker packer(w);
    std::vector<ServerId> got;
    for (const double s : sizes) got.push_back(packer.admit(DcId(0), s));
    if (run == 0) {
      first_run = got;
    } else {
      EXPECT_EQ(got, first_run);
    }
  }
}

class PackSelectorTest : public ::testing::Test {
 protected:
  PackSelectorTest() {
    config_ = CallConfig::make({{LocationId(0), 2}}, MediaType::kAudio);
  }

  /// Starts and freezes `n` calls at location A (they stay on DC-A).
  void freeze_calls(RealtimeSelector& selector, std::uint32_t n,
                    std::vector<ServerId>* servers = nullptr) {
    for (std::uint32_t c = 1; c <= n; ++c) {
      selector.on_call_start(CallId(c), LocationId(0), 0.0);
      const FreezeResult r =
          selector.on_config_frozen(CallId(c), config_, 300.0);
      ASSERT_EQ(r.dc, DcId(0));
      if (servers != nullptr) servers->push_back(r.server);
    }
  }

  PackedWorld world_;
  CallConfig config_ = CallConfig::make({{LocationId(0), 1}},
                                        MediaType::kAudio);
  std::vector<double> budget_ = {100.0, 100.0};
};

TEST_F(PackSelectorTest, FreezePacksOntoAServerAndEndReleasesIt) {
  fault::HealthTable health(2, 1, 3);
  RealtimeSelector selector(world_.ctx(), nullptr, {}, 0.0, &health);
  ASSERT_NE(selector.packer(), nullptr);
  std::vector<ServerId> servers;
  freeze_calls(selector, 2, &servers);
  // Both empty at first freeze: tie breaks to the lowest id; the second
  // call best-fits onto the now-fuller same server (2 + 2 = 4 = capacity).
  EXPECT_EQ(servers[0], ServerId(0));
  EXPECT_EQ(servers[1], ServerId(0));
  EXPECT_DOUBLE_EQ(selector.packer()->server_cores_used(ServerId(0)), 4.0);
  selector.on_call_end(CallId(1), 400.0);
  selector.on_call_end(CallId(2), 400.0);
  EXPECT_DOUBLE_EQ(selector.packer()->dc_cores_used(DcId(0)), 0.0);
}

TEST_F(PackSelectorTest, DrainRepacksOntoSiblingThenSpillsCrossDc) {
  fault::HealthTable health(2, 1, 3);
  RealtimeSelector selector(world_.ctx(), nullptr, {}, 0.0, &health);
  freeze_calls(selector, 3);  // c1, c2 fill A-ms0; c3 lands on A-ms1

  health.set_server(ServerId(0), false);
  const fault::FailoverOutcome out =
      selector.drain_server(ServerId(0), 400.0, budget_);
  ASSERT_EQ(out.moved.size(), 2u);
  EXPECT_TRUE(out.dropped.empty());
  // Tier S1: one call re-packs bounded onto the sibling (from == to, quota
  // untouched); tier S2/S3: the second spills cross-DC onto DC-B's fleet.
  std::size_t sibling = 0;
  std::size_t cross = 0;
  for (const fault::FailoverMove& m : out.moved) {
    if (m.from == m.to) {
      ++sibling;
      EXPECT_EQ(m.to_server, ServerId(1));
    } else {
      ++cross;
      EXPECT_EQ(m.to, DcId(1));
      EXPECT_EQ(m.to_server, ServerId(2));
    }
  }
  EXPECT_EQ(sibling, 1u);
  EXPECT_EQ(cross, 1u);
  EXPECT_DOUBLE_EQ(selector.packer()->server_cores_used(ServerId(0)), 0.0);
  EXPECT_DOUBLE_EQ(selector.packer()->server_cores_used(ServerId(1)), 4.0);
  EXPECT_DOUBLE_EQ(selector.packer()->server_cores_used(ServerId(2)), 2.0);
}

TEST_F(PackSelectorTest, DrainOverflowsOntoSiblingBeforeDropping) {
  fault::HealthTable health(2, 1, 3);
  RealtimeSelector selector(world_.ctx(), nullptr, {}, 0.0, &health);
  freeze_calls(selector, 3);

  // DC-B down: the cross-DC tiers are unavailable, so the call that does
  // not fit bounded on the sibling overflows onto it (tier S4) instead of
  // dropping — the DC itself is healthy.
  health.set_dc(DcId(1), false);
  health.set_server(ServerId(0), false);
  const fault::FailoverOutcome out =
      selector.drain_server(ServerId(0), 400.0, budget_);
  ASSERT_EQ(out.moved.size(), 2u);
  EXPECT_TRUE(out.dropped.empty());
  for (const fault::FailoverMove& m : out.moved) {
    EXPECT_EQ(m.from, DcId(0));
    EXPECT_EQ(m.to, DcId(0));
    EXPECT_EQ(m.to_server, ServerId(1));
  }
  EXPECT_EQ(selector.packer()->overcommit_admits(), 1u);
  EXPECT_DOUBLE_EQ(selector.packer()->server_cores_used(ServerId(1)), 6.0);
}

TEST_F(PackSelectorTest, DrainDropsOnlyWhenEveryTierIsExhausted) {
  fault::HealthTable health(2, 1, 3);
  RealtimeSelector selector(world_.ctx(), nullptr, {}, 0.0, &health);
  freeze_calls(selector, 1);

  // No up sibling (A-ms1 down too), no up cross-DC target: tier S5.
  health.set_dc(DcId(1), false);
  health.set_server(ServerId(0), false);
  health.set_server(ServerId(1), false);
  const fault::FailoverOutcome out =
      selector.drain_server(ServerId(0), 400.0, budget_);
  EXPECT_TRUE(out.moved.empty());
  ASSERT_EQ(out.dropped.size(), 1u);
  EXPECT_EQ(out.dropped[0], CallId(1));
  EXPECT_DOUBLE_EQ(selector.packer()->dc_cores_used(DcId(0)), 0.0);
}

TEST_F(PackSelectorTest, DefragmentConsolidatesFreeSpace) {
  // Eight 1-participant calls fill both DC-A servers; ending alternating
  // calls shreds the free space across the fleet.
  fault::HealthTable health(2, 1, 3);
  RealtimeSelector selector(world_.ctx(), nullptr, {}, 0.0, &health);
  const CallConfig small =
      CallConfig::make({{LocationId(0), 1}}, MediaType::kAudio);
  for (std::uint32_t c = 1; c <= 8; ++c) {
    selector.on_call_start(CallId(c), LocationId(0), 0.0);
    ASSERT_EQ(selector.on_config_frozen(CallId(c), small, 300.0).dc, DcId(0));
  }
  for (std::uint32_t c = 1; c <= 8; c += 2) {
    selector.on_call_end(CallId(c), 400.0);
  }
  const double used_before = selector.packer()->dc_cores_used(DcId(0));
  const double frag_before = selector.packer()->fragmentation(DcId(0));
  EXPECT_GT(frag_before, 0.0);

  const pack::DefragResult r = selector.defragment_dc(DcId(0));
  EXPECT_FALSE(r.moves.empty());
  EXPECT_LT(r.fragmentation_after, frag_before);
  EXPECT_DOUBLE_EQ(selector.packer()->dc_cores_used(DcId(0)), used_before);
  for (const pack::ServerStats& s : selector.packer()->stats()) {
    EXPECT_EQ(s.admitted_mc - s.released_mc,
              pack::to_millicores(s.used_cores));
  }
}

TEST_F(PackSelectorTest, EightThreadChurnLeavesZeroOccupancy) {
  fault::HealthTable health(2, 1, 3);
  RealtimeSelector selector(world_.ctx(), nullptr, {}, 0.0, &health);
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint32_t kCallsPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, &selector, t] {
      const CallConfig one =
          CallConfig::make({{LocationId(t % 2), 1}}, MediaType::kAudio);
      for (std::uint32_t i = 0; i < kCallsPerThread; ++i) {
        const CallId id(1 + t * kCallsPerThread + i);
        selector.on_call_start(id, LocationId(t % 2), 0.0);
        selector.on_config_frozen(id, i % 3 == 0 ? config_ : one, 300.0);
        selector.on_call_end(id, 400.0);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  std::int64_t admitted = 0;
  std::int64_t released = 0;
  for (const pack::ServerStats& s : selector.packer()->stats()) {
    EXPECT_EQ(pack::to_millicores(s.used_cores), 0)
        << "server " << s.server.value() << " leaked occupancy";
    EXPECT_EQ(s.admits, s.releases);
    admitted += s.admitted_mc;
    released += s.released_mc;
  }
  EXPECT_EQ(admitted, released);
  EXPECT_GT(admitted, 0);
  EXPECT_DOUBLE_EQ(selector.packer()->dc_cores_used(DcId(0)), 0.0);
  EXPECT_DOUBLE_EQ(selector.packer()->dc_cores_used(DcId(1)), 0.0);
}

TEST(PackNoFleetTest, SelectorWithoutServersHasNoPacker) {
  World w;
  w.add_location({"A", 0.0, 0.0, 0.0, 1.0, "R"});
  w.add_location({"B", 0.0, 8.0, 1.0, 1.0, "R"});
  w.add_datacenter({"DC-A", LocationId(0), 1.0});
  w.add_datacenter({"DC-B", LocationId(1), 1.0});
  Topology topology(w);
  topology.add_link(LocationId(0), LocationId(1), 15.0, 10.0);
  topology.compute_paths();
  const LatencyMatrix latency = LatencyMatrix::from_topology(w, topology, 8.0);
  CallConfigRegistry registry;
  LoadModel loads{{1.0, 1.5, 3.0}, {1.0, 15.0, 35.0}};
  EvalContext ctx{&w, &topology, &latency, &registry, &loads};

  RealtimeSelector selector(ctx, nullptr, {});
  EXPECT_EQ(selector.packer(), nullptr);
  const CallConfig config =
      CallConfig::make({{LocationId(0), 2}}, MediaType::kAudio);
  selector.on_call_start(CallId(1), LocationId(0), 0.0);
  const FreezeResult r = selector.on_config_frozen(CallId(1), config, 300.0);
  EXPECT_FALSE(r.server.valid());
  selector.on_call_end(CallId(1), 400.0);
}

}  // namespace
}  // namespace sb
