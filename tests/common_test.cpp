// Unit tests for the common substrate: RNG distributions, statistics,
// tables, CSV round-tripping.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/csv.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace sb {
namespace {

TEST(RngTest, DeterministicBySeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Rng c(43);
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(5.0, 7.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, UniformIndexCoversAllBuckets) {
  Rng rng(2);
  std::vector<int> hits(7, 0);
  for (int i = 0; i < 7000; ++i) ++hits[rng.uniform_index(7)];
  for (int h : hits) EXPECT_GT(h, 700);  // each ~1000 expected
}

TEST(RngTest, NormalMoments) {
  Rng rng(3);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(4);
  Summary small;
  Summary large;
  for (int i = 0; i < 20000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.0)));
    large.add(static_cast<double>(rng.poisson(200.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 200.0, 1.5);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(6);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 8000; ++i) ++hits[rng.weighted_index(weights)];
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[2]) / hits[0], 3.0, 0.5);
}

TEST(RngTest, WeightedIndexRejectsBadInput) {
  Rng rng(7);
  std::vector<double> empty;
  EXPECT_THROW(rng.weighted_index(empty), InvalidArgument);
  std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), InvalidArgument);
}

TEST(ZipfSamplerTest, PmfSumsToOneAndIsDecreasing) {
  ZipfSampler zipf(100, 1.2);
  double total = 0.0;
  for (std::size_t k = 0; k < 100; ++k) {
    total += zipf.pmf(k);
    if (k > 0) {
      EXPECT_LE(zipf.pmf(k), zipf.pmf(k - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, TopRanksDominate) {
  // The Fig 7(c) effect: a small fraction of ranks carries most draws.
  ZipfSampler zipf(1000, 1.25);
  Rng rng(8);
  int top10 = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    if (zipf(rng) < 10) ++top10;
  }
  EXPECT_GT(static_cast<double>(top10) / draws, 0.5);
}

TEST(StatsTest, SummaryTracksMinMaxMeanVar) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  const std::vector<double> empty;
  EXPECT_THROW(quantile(empty, 0.5), InvalidArgument);
}

TEST(StatsTest, RmseAndMae) {
  std::vector<double> truth{1.0, 2.0, 3.0};
  std::vector<double> est{1.0, 4.0, 1.0};
  EXPECT_NEAR(mae(truth, est), (0.0 + 2.0 + 2.0) / 3.0, 1e-12);
  EXPECT_NEAR(rmse(truth, est), std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(StatsTest, EmpiricalCdfEndsAtMax) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  const auto cdf = empirical_cdf(xs, 5);
  EXPECT_DOUBLE_EQ(cdf.back().value, 5.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
  }
}

TEST(TableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.row().cell("x").cell(1.5);
  t.row().cell("longer").cell(std::int64_t{42});
  const std::string out = t.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
}

TEST(TableTest, RejectsTooManyCells) {
  TextTable t({"a"});
  t.row().cell("1");
  EXPECT_THROW(t.cell("2"), InvalidArgument);
}

TEST(CsvTest, RoundTripsQuotedFields) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
  writer.write_row("label", {1.25, 2.5}, 2);
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "with,comma");
  EXPECT_EQ(rows[0][2], "with\"quote");
  EXPECT_EQ(rows[0][3], "multi\nline");
  EXPECT_EQ(rows[1][0], "label");
  EXPECT_EQ(rows[1][1], "1.25");
}

TEST(CsvTest, ParsesEmptyFields) {
  const auto rows = parse_csv("a,,c\n,x,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][1], "");
  EXPECT_EQ(rows[1][0], "");
  EXPECT_EQ(rows[1][2], "");
}

}  // namespace
}  // namespace sb
