#include "sim/simulator.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/span.h"
#include "obs/timer.h"
#include "obs/timeseries.h"

namespace sb {

double SimReport::total_peak_cores() const {
  double acc = 0.0;
  for (double v : dc_peak_cores) acc += v;
  return acc;
}

double SimReport::total_peak_gbps() const {
  double acc = 0.0;
  for (double v : link_peak_gbps) acc += v;
  return acc;
}

double SimReport::dc_bucket_peak(std::size_t dc) const {
  if (dc >= dc_cores_buckets.size()) return 0.0;
  double peak = 0.0;
  for (double v : dc_cores_buckets[dc]) peak = std::max(peak, v);
  return peak;
}

namespace {

enum class EventType : std::uint8_t {
  kStart = 0,
  kLegJoin = 1,
  kMediaChange = 2,
  kFreeze = 3,
  kEnd = 4,
  kFault = 5,
};

struct Event {
  SimTime time;
  std::uint64_t seq;  ///< tie-break so ordering is deterministic
  EventType type;
  std::size_t record;  ///< record index; fault-event index for kFault
  std::size_t leg;     ///< for kLegJoin

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Live per-call simulation state.
struct LiveCall {
  DcId dc;
  MediaType media = MediaType::kAudio;
  std::vector<CallLeg> joined;
  bool active = false;
  ServerId server;  ///< packed media server (invalid until freeze / no fleet)
};

/// Mutable usage counters with peak tracking, plus sample-and-hold bucket
/// sampling of per-DC cores on a grid anchored at t = 0: advance(t) records
/// the current load into every bucket whose end is <= t, so bucket b holds
/// the load at exactly (b+1)*bucket_s. Because every partition samples the
/// same grid, per-bucket values sum exactly across concurrent partitions.
class UsageTracker {
 public:
  UsageTracker(const EvalContext& ctx, double bucket_s)
      : ctx_(ctx),
        dc_cores_(ctx.world->dc_count(), 0.0),
        dc_peaks_(ctx.world->dc_count(), 0.0),
        link_gbps_(ctx.topology->link_count(), 0.0),
        link_peaks_(ctx.topology->link_count(), 0.0),
        server_cores_(ctx.world->server_count(), 0.0),
        server_peaks_(ctx.world->server_count(), 0.0),
        dc_buckets_(ctx.world->dc_count()),
        bucket_s_(bucket_s),
        next_bucket_end_(bucket_s) {}

  /// Call before applying any event at time `t` (events AT a bucket
  /// boundary land in the bucket that starts there, not the one ending).
  void advance(SimTime t) {
    while (next_bucket_end_ <= t) {
      for (std::size_t x = 0; x < dc_cores_.size(); ++x) {
        dc_buckets_[x].push_back(dc_cores_[x]);
      }
      next_bucket_end_ += bucket_s_;
    }
  }

  void add_leg(DcId dc, MediaType media, LocationId loc, double sign) {
    const double cores = ctx_.loads->cores_per_participant(media) * sign;
    dc_cores_[dc.value()] += cores;
    if (sign > 0) {
      dc_peaks_[dc.value()] =
          std::max(dc_peaks_[dc.value()], dc_cores_[dc.value()]);
    }
    const double gbps =
        ctx_.loads->mbps_per_participant(media) / kMbpsPerGbps * sign;
    const LocationId dc_loc = ctx_.world->datacenter(dc).location;
    for (LinkId l : ctx_.topology->path(dc_loc, loc)) {
      link_gbps_[l.value()] += gbps;
      if (sign > 0) {
        link_peaks_[l.value()] =
            std::max(link_peaks_[l.value()], link_gbps_[l.value()]);
      }
    }
  }

  void add_call(const LiveCall& call, double sign) {
    for (const CallLeg& leg : call.joined) {
      add_leg(call.dc, call.media, leg.location, sign);
    }
  }

  /// Packer-footprint accounting (static frozen footprint, not joined
  /// legs — the packer's own unit). No-op for an invalid server.
  void add_server(ServerId server, double cores) {
    if (!server.valid() || server.value() >= server_cores_.size()) return;
    server_cores_[server.value()] += cores;
    if (cores > 0.0) {
      server_peaks_[server.value()] = std::max(
          server_peaks_[server.value()], server_cores_[server.value()]);
    }
  }

  [[nodiscard]] const std::vector<double>& dc_peaks() const {
    return dc_peaks_;
  }
  [[nodiscard]] const std::vector<double>& link_peaks() const {
    return link_peaks_;
  }
  [[nodiscard]] const std::vector<double>& server_peaks() const {
    return server_peaks_;
  }
  [[nodiscard]] std::vector<std::vector<double>>&& take_dc_buckets() {
    return std::move(dc_buckets_);
  }

 private:
  const EvalContext& ctx_;
  std::vector<double> dc_cores_;
  std::vector<double> dc_peaks_;
  std::vector<double> link_gbps_;
  std::vector<double> link_peaks_;
  std::vector<double> server_cores_;
  std::vector<double> server_peaks_;
  std::vector<std::vector<double>> dc_buckets_;
  double bucket_s_;
  SimTime next_bucket_end_;
};

}  // namespace

/// Per-partition accumulator; one per driver thread, merged after the join.
struct Simulator::Partial {
  std::uint64_t calls = 0;
  std::uint64_t frozen = 0;
  std::uint64_t migrations = 0;
  double acl_sum = 0.0;
  std::uint64_t majority_first = 0;
  std::uint64_t peak_concurrent = 0;
  std::uint64_t failover_migrations = 0;
  std::uint64_t dropped = 0;
  std::vector<double> dc_peaks;
  std::vector<double> link_peaks;
  std::vector<double> server_peaks;
  std::vector<std::vector<double>> dc_buckets;
  std::vector<HostingEvent> hosting;  ///< filled only when a log was requested

  void merge(Partial& other) {
    calls += other.calls;
    frozen += other.frozen;
    migrations += other.migrations;
    acl_sum += other.acl_sum;
    majority_first += other.majority_first;
    failover_migrations += other.failover_migrations;
    dropped += other.dropped;
    // Peaks merge as sums of per-partition peaks: an upper bound on the
    // time-aligned peak (partitions replay without a shared clock).
    peak_concurrent += other.peak_concurrent;
    if (dc_peaks.empty()) dc_peaks.assign(other.dc_peaks.size(), 0.0);
    for (std::size_t i = 0; i < other.dc_peaks.size(); ++i) {
      dc_peaks[i] += other.dc_peaks[i];
    }
    if (link_peaks.empty()) link_peaks.assign(other.link_peaks.size(), 0.0);
    for (std::size_t i = 0; i < other.link_peaks.size(); ++i) {
      link_peaks[i] += other.link_peaks[i];
    }
    if (server_peaks.empty()) {
      server_peaks.assign(other.server_peaks.size(), 0.0);
    }
    for (std::size_t i = 0; i < other.server_peaks.size(); ++i) {
      server_peaks[i] += other.server_peaks[i];
    }
    // Bucket samples sum exactly: every partition samples the same grid. A
    // partition whose stream ended early contributes zero to later buckets
    // (all its calls have ended by then), so padding is implicit.
    if (dc_buckets.empty()) dc_buckets.resize(other.dc_buckets.size());
    for (std::size_t x = 0; x < other.dc_buckets.size(); ++x) {
      if (dc_buckets[x].size() < other.dc_buckets[x].size()) {
        dc_buckets[x].resize(other.dc_buckets[x].size(), 0.0);
      }
      for (std::size_t b = 0; b < other.dc_buckets[x].size(); ++b) {
        dc_buckets[x][b] += other.dc_buckets[x][b];
      }
    }
    // Hosting events concatenate partition-by-partition: each record lives
    // in exactly one partition, so its events stay in replay order.
    hosting.insert(hosting.end(),
                   std::make_move_iterator(other.hosting.begin()),
                   std::make_move_iterator(other.hosting.end()));
  }
};

/// Shared coordination for fault events. In sequential mode (parties <= 1)
/// the replaying thread invokes the allocator hook inline. In concurrent
/// mode every partition's queue carries every fault event, so each fault is
/// a rendezvous: arrivals block until all `parties` partitions reach it,
/// the last arrival invokes the hook (all peers are parked in the wait, so
/// the drain races no call event — same semantics as the sequential
/// driver), and the outcome lands in a per-event slot each partition then
/// applies to its own calls.
struct Simulator::FaultRuntime {
  std::vector<fault::FaultEvent> events;
  std::vector<fault::FailoverOutcome> outcomes;
  std::size_t parties = 1;
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t waiting = 0;
  std::uint64_t generation = 0;

  explicit FaultRuntime(const fault::FaultSchedule& schedule,
                        std::size_t parties_in)
      : events(schedule.events()),
        outcomes(events.size()),
        parties(parties_in) {}

  static void invoke(CallAllocator& allocator, const fault::FaultEvent& fe,
                     fault::FailoverOutcome& slot) {
    switch (fe.kind) {
      case fault::FaultEvent::Kind::kDcDown:
        slot = allocator.on_dc_failed(fe.dc, fe.time);
        break;
      case fault::FaultEvent::Kind::kDcUp:
        allocator.on_dc_recovered(fe.dc, fe.time);
        break;
      case fault::FaultEvent::Kind::kLinkDown:
        allocator.on_link_failed(fe.link, fe.time);
        break;
      case fault::FaultEvent::Kind::kLinkUp:
        allocator.on_link_recovered(fe.link, fe.time);
        break;
      case fault::FaultEvent::Kind::kServerDown:
        slot = allocator.on_server_failed(fe.server, fe.time);
        break;
      case fault::FaultEvent::Kind::kServerUp:
        allocator.on_server_recovered(fe.server, fe.time);
        break;
      case fault::FaultEvent::Kind::kWorkerDown:
        slot = allocator.on_worker_failed(fe.worker, fe.time);
        break;
      case fault::FaultEvent::Kind::kWorkerUp:
        allocator.on_worker_recovered(fe.worker, fe.time);
        break;
    }
  }

  /// Returns once `outcomes[index]` is populated for this event.
  void arrive(CallAllocator& allocator, std::size_t index) {
    if (parties <= 1) {
      invoke(allocator, events[index], outcomes[index]);
      return;
    }
    std::unique_lock lock(mutex);
    if (++waiting == parties) {
      // Last arrival: every peer is parked in the wait below, so the hook
      // (e.g. a full drain through the selector) runs with the allocator
      // quiesced, exactly like the sequential driver.
      invoke(allocator, events[index], outcomes[index]);
      waiting = 0;
      ++generation;
      cv.notify_all();
    } else {
      const std::uint64_t gen = generation;
      cv.wait(lock, [&] { return generation != gen; });
    }
  }
};

Simulator::Metrics::Metrics(const EvalContext& ctx)
    : calls(obs::MetricsRegistry::global().counter("sb.sim.calls")),
      frozen(obs::MetricsRegistry::global().counter("sb.sim.frozen")),
      migrations(obs::MetricsRegistry::global().counter("sb.sim.migrations")),
      acl_ms(obs::MetricsRegistry::global().histogram(
          "sb.sim.acl_ms", {.min = 0.1, .max = 1000.0, .bucket_count = 80})),
      run_s(obs::MetricsRegistry::global().histogram("sb.sim.run_s")),
      peak_concurrent_calls(obs::MetricsRegistry::global().gauge(
          "sb.sim.peak_concurrent_calls")) {
  require(ctx.world != nullptr, "Simulator: incomplete context");
  dc_peak_cores.reserve(ctx.world->dc_count());
  for (std::size_t x = 0; x < ctx.world->dc_count(); ++x) {
    dc_peak_cores.push_back(&obs::MetricsRegistry::global().gauge(
        "sb.sim.dc_peak_cores." + std::to_string(x)));
  }
}

Simulator::Simulator(EvalContext ctx) : ctx_(ctx), metrics_(ctx_) {
  require(ctx_.world && ctx_.topology && ctx_.latency && ctx_.registry &&
              ctx_.loads,
          "Simulator: incomplete context");
}

void Simulator::replay_partition(const CallRecordDatabase& db,
                                 CallAllocator& allocator,
                                 double freeze_delay_s,
                                 const std::vector<std::uint8_t>& mine,
                                 Partial& out, FaultRuntime* faults,
                                 double bucket_s, bool log_hosting,
                                 std::size_t partition,
                                 std::uint64_t parent_span) const {
  obs::Span span("sim.partition", obs::Subsystem::kSim, obs::kNoSimTime,
                 parent_span);
  span.attr(obs::AttrKey::kPartition, static_cast<std::int64_t>(partition));
  std::uint64_t event_count = 0;
  const auto& records = db.records();
  // The packer's per-call unit: the static frozen footprint (config
  // participants x per-participant cores), NOT the joined-leg load — the
  // same quantity the selector admits to the packer at freeze time.
  const auto packed_footprint = [this](const CallRecord& r) {
    const CallConfig& cfg = ctx_.registry->get(r.config);
    return cfg.total_participants() *
           ctx_.loads->cores_per_participant(cfg.media());
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::uint64_t seq = 0;
  // Fault events take the lowest sequence numbers so that at an equal
  // timestamp the fault applies before any call event — every partition
  // (and the sequential driver) therefore orders them identically.
  std::unordered_map<CallId, std::size_t> id_to_record;
  if (faults != nullptr) {
    for (std::size_t f = 0; f < faults->events.size(); ++f) {
      queue.push({faults->events[f].time, seq++, EventType::kFault, f, 0});
    }
  }
  for (std::size_t r = 0; r < records.size(); ++r) {
    if (!mine[r]) continue;
    const CallRecord& rec = records[r];
    if (faults != nullptr) id_to_record.emplace(rec.id, r);
    queue.push({rec.start_s, seq++, EventType::kStart, r, 0});
    for (std::size_t leg = 1; leg < rec.legs.size(); ++leg) {
      queue.push({rec.start_s + rec.legs[leg].join_offset_s, seq++,
                  EventType::kLegJoin, r, leg});
    }
    const CallConfig& config = ctx_.registry->get(rec.config);
    if (config.media() != MediaType::kAudio && rec.media_change_offset_s > 0.0) {
      queue.push({rec.start_s + rec.media_change_offset_s, seq++,
                  EventType::kMediaChange, r, 0});
    }
    if (rec.duration_s > freeze_delay_s) {
      queue.push({rec.start_s + freeze_delay_s, seq++, EventType::kFreeze, r,
                  0});
    }
    queue.push({rec.start_s + rec.duration_s, seq++, EventType::kEnd, r, 0});
  }

  UsageTracker usage(ctx_, bucket_s);
  std::vector<LiveCall> live(records.size());
  std::uint64_t concurrent = 0;

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    usage.advance(ev.time);
    if (telemetry_ != nullptr) telemetry_->sample(ev.time);
    ++event_count;

    if (ev.type == EventType::kFault) {
      faults->arrive(allocator, ev.record);
      // Re-point this partition's accounting for every one of ITS calls the
      // allocator moved or dropped (other partitions handle their own).
      const fault::FailoverOutcome& outcome = faults->outcomes[ev.record];
      for (const fault::FailoverMove& m : outcome.moved) {
        const auto it = id_to_record.find(m.call);
        if (it == id_to_record.end()) continue;
        LiveCall& call = live[it->second];
        if (!call.active) continue;
        usage.add_call(call, -1.0);
        call.dc = m.to;
        usage.add_call(call, +1.0);
        if (call.server != m.to_server) {
          const double fp = packed_footprint(records[it->second]);
          usage.add_server(call.server, -fp);
          call.server = m.to_server;
          usage.add_server(call.server, +fp);
        }
        ++out.failover_migrations;
        if (log_hosting) {
          out.hosting.push_back({it->second, ev.time,
                                 HostingEvent::Kind::kMove, m.to,
                                 m.to_server});
        }
      }
      for (CallId dropped : outcome.dropped) {
        const auto it = id_to_record.find(dropped);
        if (it == id_to_record.end()) continue;
        LiveCall& call = live[it->second];
        if (!call.active) continue;
        usage.add_call(call, -1.0);
        if (call.server.valid()) {
          usage.add_server(call.server,
                           -packed_footprint(records[it->second]));
          call.server = ServerId();
        }
        call.active = false;
        --concurrent;
        ++out.dropped;
        if (log_hosting) {
          out.hosting.push_back({it->second, ev.time,
                                 HostingEvent::Kind::kDrop, DcId(),
                                 ServerId()});
        }
      }
      continue;
    }

    const CallRecord& rec = records[ev.record];
    const CallConfig& config = ctx_.registry->get(rec.config);
    LiveCall& call = live[ev.record];

    switch (ev.type) {
      case EventType::kStart: {
        const LocationId first = rec.legs.front().location;
        call.dc = allocator.on_call_start(rec.id, first, ev.time);
        // Media starts as audio when an upgrade event is pending, else at
        // the config's media type.
        call.media = rec.media_change_offset_s > 0.0 ? MediaType::kAudio
                                                     : config.media();
        call.joined = {rec.legs.front()};
        call.active = true;
        usage.add_leg(call.dc, call.media, first, +1.0);
        ++out.calls;
        if (log_hosting) {
          out.hosting.push_back({ev.record, ev.time,
                                 HostingEvent::Kind::kStart, call.dc,
                                 ServerId()});
        }
        if (first == config.majority_location()) ++out.majority_first;
        ++concurrent;
        out.peak_concurrent = std::max(out.peak_concurrent, concurrent);
        break;
      }
      case EventType::kLegJoin: {
        if (!call.active) break;  // leg joined after the call ended
        call.joined.push_back(rec.legs[ev.leg]);
        usage.add_leg(call.dc, call.media, rec.legs[ev.leg].location, +1.0);
        break;
      }
      case EventType::kMediaChange: {
        if (!call.active) break;
        usage.add_call(call, -1.0);
        call.media = config.media();
        usage.add_call(call, +1.0);
        break;
      }
      case EventType::kFreeze: {
        if (!call.active) break;
        ++out.frozen;
        const FreezeResult result =
            allocator.on_config_frozen(rec.id, config, ev.time);
        if (result.server.valid()) {
          // First packing of this call (the selector packs at freeze); a
          // call freezes once, so there is no old footprint to release.
          call.server = result.server;
          usage.add_server(call.server, +packed_footprint(rec));
        }
        if (result.migrated) {
          ++out.migrations;
          usage.add_call(call, -1.0);
          call.dc = result.dc;
          usage.add_call(call, +1.0);
          if (log_hosting) {
            out.hosting.push_back({ev.record, ev.time,
                                   HostingEvent::Kind::kMove, call.dc,
                                   call.server});
          }
        } else if (result.server.valid() && log_hosting) {
          // Fleet runs log the packing decision even without a DC change;
          // without a fleet this event never appears, keeping no-fleet
          // logs byte-identical to the pre-fleet format.
          out.hosting.push_back({ev.record, ev.time,
                                 HostingEvent::Kind::kPack, call.dc,
                                 call.server});
        }
        break;
      }
      case EventType::kEnd: {
        if (!call.active) break;  // dropped by a failover before its end
        usage.add_call(call, -1.0);
        if (call.server.valid()) {
          usage.add_server(call.server, -packed_footprint(rec));
        }
        call.active = false;
        if (log_hosting) {
          out.hosting.push_back({ev.record, ev.time,
                                 HostingEvent::Kind::kEnd, DcId(),
                                 ServerId()});
        }
        allocator.on_call_end(rec.id, ev.time);
        const double final_acl_ms = acl_ms(config, call.dc, *ctx_.latency);
        out.acl_sum += final_acl_ms;
        metrics_.acl_ms.record(final_acl_ms);
        --concurrent;
        break;
      }
      case EventType::kFault:
        break;  // handled above
    }
  }

  out.dc_peaks = usage.dc_peaks();
  out.link_peaks = usage.link_peaks();
  out.server_peaks = usage.server_peaks();
  out.dc_buckets = usage.take_dc_buckets();
  span.attr(obs::AttrKey::kEvents, static_cast<std::int64_t>(event_count));
}

SimReport Simulator::finalize(const CallRecordDatabase& /*db*/,
                              CallAllocator& allocator, const Partial& total,
                              double bucket_s, bool bucket_peaks) const {
  SimReport report;
  report.allocator = allocator.name();
  report.calls = total.calls;
  report.frozen = total.frozen;
  report.migrations = total.migrations;
  report.peak_concurrent_calls = total.peak_concurrent;
  report.failover_migrations = total.failover_migrations;
  report.dropped_calls = total.dropped;
  report.migration_fraction =
      report.calls == 0
          ? 0.0
          : static_cast<double>(report.migrations) /
                static_cast<double>(report.calls);
  report.mean_acl_ms =
      report.calls == 0 ? 0.0
                        : total.acl_sum / static_cast<double>(report.calls);
  report.first_joiner_majority_fraction =
      report.calls == 0
          ? 0.0
          : static_cast<double>(total.majority_first) /
                static_cast<double>(report.calls);
  report.dc_cores_buckets = total.dc_buckets;
  report.bucket_s = bucket_s;

  metrics_.calls.inc(report.calls);
  metrics_.frozen.inc(report.frozen);
  metrics_.migrations.inc(report.migrations);
  // One pass copies the realized peaks into the report and raises the
  // process-wide peak gauges (handles resolved at construction; no per-run
  // name lookups or second accounting loop).
  if (bucket_peaks) {
    // Concurrent driver: the time-aligned bucket maximum, exact at bucket
    // granularity (the summed per-partition continuous peaks in
    // total.dc_peaks are only an upper bound).
    report.dc_peak_cores.resize(total.dc_buckets.size(), 0.0);
    for (std::size_t x = 0; x < total.dc_buckets.size(); ++x) {
      report.dc_peak_cores[x] = report.dc_bucket_peak(x);
    }
  } else {
    report.dc_peak_cores = total.dc_peaks;
  }
  for (std::size_t x = 0; x < report.dc_peak_cores.size(); ++x) {
    metrics_.dc_peak_cores[x]->max_of(report.dc_peak_cores[x]);
  }
  report.link_peak_gbps = total.link_peaks;
  report.server_peak_cores = total.server_peaks;
  metrics_.peak_concurrent_calls.max_of(
      static_cast<double>(report.peak_concurrent_calls));
  return report;
}

SimReport Simulator::run(const CallRecordDatabase& db, CallAllocator& allocator,
                         double freeze_delay_s,
                         const fault::FaultSchedule* faults,
                         double bucket_s, HostingLog* hosting_log) const {
  require(freeze_delay_s > 0.0, "Simulator::run: freeze delay");
  require(bucket_s > 0.0, "Simulator::run: bucket width");
  obs::ScopedTimer run_timer(metrics_.run_s);
  obs::Span span("sim.run", obs::Subsystem::kSim);
  Partial total;
  const std::vector<std::uint8_t> all(db.records().size(), 1);
  const bool log_hosting = hosting_log != nullptr;
  if (faults != nullptr && !faults->empty()) {
    FaultRuntime runtime(*faults, 1);
    replay_partition(db, allocator, freeze_delay_s, all, total, &runtime,
                     bucket_s, log_hosting, 0, span.id());
  } else {
    replay_partition(db, allocator, freeze_delay_s, all, total, nullptr,
                     bucket_s, log_hosting, 0, span.id());
  }
  if (hosting_log != nullptr) hosting_log->events = std::move(total.hosting);
  return finalize(db, allocator, total, bucket_s, /*bucket_peaks=*/false);
}

SimReport Simulator::run_concurrent(const CallRecordDatabase& db,
                                    CallAllocator& allocator,
                                    double freeze_delay_s, std::size_t threads,
                                    const fault::FaultSchedule* faults,
                                    double bucket_s,
                                    HostingLog* hosting_log) const {
  require(freeze_delay_s > 0.0, "Simulator::run_concurrent: freeze delay");
  require(bucket_s > 0.0, "Simulator::run_concurrent: bucket width");
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  obs::ScopedTimer run_timer(metrics_.run_s);
  obs::Span span("sim.run_concurrent", obs::Subsystem::kSim);
  const auto& records = db.records();

  // Partition by call shard: every event of a call replays on one thread,
  // which preserves per-call ordering (start < freeze < end) and gives the
  // controller's KV writes per-key last-writer-wins for free.
  std::vector<std::vector<std::uint8_t>> mine(
      threads, std::vector<std::uint8_t>(records.size(), 0));
  for (std::size_t r = 0; r < records.size(); ++r) {
    mine[records[r].id.value() % threads][r] = 1;
  }

  // The fault rendezvous needs every partition live at once: the pool below
  // has exactly `threads` workers for `threads` partition tasks, so all
  // parties can reach each fault barrier.
  std::unique_ptr<FaultRuntime> runtime;
  if (faults != nullptr && !faults->empty()) {
    runtime = std::make_unique<FaultRuntime>(*faults, threads);
  }

  ThreadPool pool(threads);
  std::vector<std::future<Partial>> futures;
  futures.reserve(threads);
  const bool log_hosting = hosting_log != nullptr;
  const std::uint64_t root_span = span.id();
  for (std::size_t p = 0; p < threads; ++p) {
    futures.push_back(pool.submit([this, &db, &allocator, freeze_delay_s,
                                   part = &mine[p], rt = runtime.get(),
                                   bucket_s, log_hosting, p, root_span] {
      Partial out;
      replay_partition(db, allocator, freeze_delay_s, *part, out, rt,
                       bucket_s, log_hosting, p, root_span);
      return out;
    }));
  }
  Partial total;
  for (auto& f : futures) {
    Partial part = f.get();
    total.merge(part);
  }
  if (hosting_log != nullptr) hosting_log->events = std::move(total.hosting);
  return finalize(db, allocator, total, bucket_s, /*bucket_peaks=*/true);
}

}  // namespace sb
