// Unit tests for the sb_fault subsystem: lock-free health table semantics
// (epoch stamping, redundant-set no-ops, the all_up fast path), fault
// schedule construction and determinism, over-capacity accounting, and a
// multi-threaded stress test racing health flips and DC drains against
// live selector traffic (runs under TSan in CI; label: fault).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/realtime.h"
#include "fault/failover.h"
#include "fault/fault_schedule.h"
#include "fault/health_table.h"

namespace sb {
namespace {

TEST(HealthTableTest, StartsAllUpWithEpochZero) {
  fault::HealthTable table(3, 2);
  EXPECT_TRUE(table.all_up());
  EXPECT_EQ(table.down_dcs(), 0u);
  EXPECT_EQ(table.down_links(), 0u);
  for (std::uint32_t x = 0; x < 3; ++x) {
    EXPECT_TRUE(table.dc_up(DcId(x)));
    EXPECT_EQ(table.dc_state(DcId(x)).epoch, 0u);
  }
  for (std::uint32_t l = 0; l < 2; ++l) {
    EXPECT_TRUE(table.link_up(LinkId(l)));
  }
}

TEST(HealthTableTest, FlipBumpsEpochAndRedundantSetIsNoOp) {
  fault::HealthTable table(2, 1);
  const fault::HealthState down = table.set_dc(DcId(0), false);
  EXPECT_FALSE(down.up);
  EXPECT_EQ(down.epoch, 1u);
  EXPECT_FALSE(table.all_up());
  EXPECT_FALSE(table.dc_up(DcId(0)));
  EXPECT_TRUE(table.dc_up(DcId(1)));

  // Redundant down: state and epoch unchanged, down counter not double-
  // counted (a second recovery would otherwise underflow it).
  const fault::HealthState again = table.set_dc(DcId(0), false);
  EXPECT_EQ(again.epoch, 1u);
  EXPECT_EQ(table.down_dcs(), 1u);

  const fault::HealthState up = table.set_dc(DcId(0), true);
  EXPECT_TRUE(up.up);
  EXPECT_EQ(up.epoch, 2u);
  EXPECT_TRUE(table.all_up());

  // Epochs distinguish "went down, recovered, went down again" from
  // "still down".
  table.set_dc(DcId(0), false);
  EXPECT_EQ(table.dc_state(DcId(0)).epoch, 3u);
}

TEST(HealthTableTest, LinksAndDcsCountIndependently) {
  fault::HealthTable table(2, 3);
  table.set_link(LinkId(1), false);
  EXPECT_FALSE(table.all_up());
  EXPECT_EQ(table.down_dcs(), 0u);
  EXPECT_EQ(table.down_links(), 1u);
  EXPECT_FALSE(table.link_up(LinkId(1)));
  table.set_dc(DcId(0), false);
  EXPECT_EQ(table.down_dcs(), 1u);
  table.set_link(LinkId(1), true);
  EXPECT_FALSE(table.all_up());  // the DC is still down
  table.set_dc(DcId(0), true);
  EXPECT_TRUE(table.all_up());
}

TEST(FaultScheduleTest, EventsSortByTimeWithStableInsertionOrder) {
  fault::FaultSchedule schedule;
  schedule.dc_up(DcId(0), 500.0);
  schedule.link_down(LinkId(2), 100.0);
  schedule.dc_down(DcId(0), 100.0);  // same instant as the link event
  const auto events = schedule.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, fault::FaultEvent::Kind::kLinkDown);
  EXPECT_EQ(events[1].kind, fault::FaultEvent::Kind::kDcDown);
  EXPECT_EQ(events[2].kind, fault::FaultEvent::Kind::kDcUp);
  EXPECT_TRUE(events[0].is_down());
  EXPECT_FALSE(events[0].is_dc());
  EXPECT_TRUE(events[1].is_dc());
}

TEST(FaultScheduleTest, FailPairProducesDownThenUp) {
  fault::FaultSchedule schedule;
  schedule.fail_dc(DcId(1), 1000.0, 600.0).fail_link(LinkId(0), 1200.0, 60.0);
  const auto events = schedule.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, fault::FaultEvent::Kind::kDcDown);
  EXPECT_DOUBLE_EQ(events[0].time, 1000.0);
  EXPECT_EQ(events[1].kind, fault::FaultEvent::Kind::kLinkDown);
  EXPECT_EQ(events[2].kind, fault::FaultEvent::Kind::kLinkUp);
  EXPECT_DOUBLE_EQ(events[2].time, 1260.0);
  EXPECT_EQ(events[3].kind, fault::FaultEvent::Kind::kDcUp);
  EXPECT_DOUBLE_EQ(events[3].time, 1600.0);
}

TEST(FaultScheduleTest, EachDcAtPeakFailsEveryDcAtItsOwnPeakSlot) {
  // DC 0 peaks in slot 2, DC 1 in slot 0 (ties resolve earliest).
  const std::vector<std::vector<double>> dc_cores = {{1.0, 3.0, 9.0, 2.0},
                                                     {5.0, 5.0, 1.0, 0.0}};
  EXPECT_EQ(fault::FaultSchedule::peak_slot(dc_cores[0]), 2u);
  EXPECT_EQ(fault::FaultSchedule::peak_slot(dc_cores[1]), 0u);
  const fault::FaultSchedule schedule = fault::FaultSchedule::each_dc_at_peak(
      dc_cores, 1800.0, 86400.0, 900.0);
  const auto events = schedule.events();
  ASSERT_EQ(events.size(), 4u);  // one down/up pair per DC
  // DC 1's outage (slot 0) comes first.
  EXPECT_EQ(events[0].dc, DcId(1));
  EXPECT_DOUBLE_EQ(events[0].time, 86400.0);
  EXPECT_EQ(events[1].dc, DcId(1));
  EXPECT_DOUBLE_EQ(events[1].time, 86400.0 + 900.0);
  EXPECT_EQ(events[2].dc, DcId(0));
  EXPECT_DOUBLE_EQ(events[2].time, 86400.0 + 2 * 1800.0);
  EXPECT_TRUE(events[2].is_down());
}

TEST(FaultScheduleTest, RandomScheduleIsDeterministicAndBounded) {
  Rng rng_a(42);
  Rng rng_b(42);
  const fault::FaultSchedule a =
      fault::FaultSchedule::random(rng_a, 4, 3, 20, 0.0, 3600.0, 300.0);
  const fault::FaultSchedule b =
      fault::FaultSchedule::random(rng_b, 4, 3, 20, 0.0, 3600.0, 300.0);
  const auto ea = a.events();
  const auto eb = b.events();
  ASSERT_EQ(ea.size(), eb.size());
  ASSERT_EQ(ea.size(), 40u);  // 20 down/up pairs
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].kind, eb[i].kind) << i;
    EXPECT_DOUBLE_EQ(ea[i].time, eb[i].time) << i;
    if (ea[i].is_dc()) {
      EXPECT_EQ(ea[i].dc, eb[i].dc);
      EXPECT_LT(ea[i].dc.value(), 4u);
    } else {
      EXPECT_EQ(ea[i].link, eb[i].link);
      EXPECT_LT(ea[i].link.value(), 3u);
    }
  }
  for (std::size_t i = 1; i < ea.size(); ++i) {
    EXPECT_GE(ea[i].time, ea[i - 1].time);
  }
  for (const fault::FaultEvent& ev : ea) {
    if (ev.is_down()) EXPECT_GE(ev.time, 0.0);
  }
}

TEST(OverCapacityTest, IntegratesOnlyTheExcess) {
  // DC 0: 2 cores over for 2 buckets; DC 1 never exceeds.
  const std::vector<std::vector<double>> buckets = {{8.0, 12.0, 12.0, 10.0},
                                                    {1.0, 2.0, 1.0, 0.0}};
  const std::vector<double> capacity = {10.0, 5.0};
  EXPECT_DOUBLE_EQ(fault::over_capacity_core_s(buckets, capacity, 60.0),
                   (2.0 + 2.0) * 60.0);
  EXPECT_DOUBLE_EQ(
      fault::over_capacity_core_s(buckets, {100.0, 100.0}, 60.0), 0.0);
}

/// Two locations, two DCs, cheap world where everything is latency-feasible.
struct TwoDcWorld {
  World world;
  Topology topology;
  LatencyMatrix latency;
  CallConfigRegistry registry;
  LoadModel loads{{1.0, 1.5, 3.0}, {1.0, 15.0, 35.0}};

  TwoDcWorld() : world(make_world()), topology(world), latency(2, 2) {
    topology.add_link(LocationId(0), LocationId(1), 15.0, 10.0);
    topology.compute_paths();
    latency = LatencyMatrix::from_topology(world, topology, 8.0);
  }

  static World make_world() {
    World w;
    w.add_location({"A", 0.0, 0.0, 0.0, 1.0, "R"});
    w.add_location({"B", 0.0, 8.0, 1.0, 1.0, "R"});
    w.add_datacenter({"DC-A", LocationId(0), 1.0});
    w.add_datacenter({"DC-B", LocationId(1), 1.0});
    return w;
  }

  [[nodiscard]] EvalContext ctx() {
    return EvalContext{&world, &topology, &latency, &registry, &loads};
  }
};

TEST(HealthStressTest, FlipsAndDrainsRaceSelectorEvents) {
  // 8 threads total: six drive call traffic through a health-aware selector
  // while two flip DC health up/down and drain the just-failed DC. The
  // invariants: no data race (TSan), the atomic quota table stays exactly
  // conserved (debits == credits once everything ends), and every call
  // remains accounted for (moved or ended, never lost).
  TwoDcWorld world;
  CallConfig config = CallConfig::make({{LocationId(0), 2}}, MediaType::kAudio);
  const ConfigId config_id = world.registry.intern(config);
  AllocationPlan plan(1, 1, 2, 1800.0);
  plan.config_columns = {config_id};
  plan.set_quota(0, 0, DcId(0), 64);
  plan.set_quota(0, 0, DcId(1), 64);

  fault::HealthTable health(2, 1);
  RealtimeSelector selector(world.ctx(), &plan, {.shard_count = 8}, 0.0,
                            &health);

  constexpr std::size_t kEventThreads = 6;
  constexpr std::uint32_t kCallsPerThread = 400;
  std::vector<std::thread> threads;
  threads.reserve(kEventThreads + 2);
  for (std::size_t t = 0; t < kEventThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < kCallsPerThread; ++i) {
        const CallId id(static_cast<std::uint32_t>(t) * kCallsPerThread + i +
                        1);
        selector.on_call_start(id, LocationId(i % 2), 0.0);
        if (i % 3 != 0) selector.on_config_frozen(id, config, 300.0);
        selector.on_call_end(id, 600.0);
      }
    });
  }
  // One flipper fails and drains DC 0; the other flaps the WAN link. DC 1
  // always survives, so the empty-budget drain can always re-home (a drop
  // would orphan the event threads' later on_call_end).
  threads.emplace_back([&] {
    for (int round = 0; round < 50; ++round) {
      health.set_dc(DcId(0), false);
      selector.drain_dc(DcId(0), 300.0, {});
      health.set_dc(DcId(0), true);
    }
  });
  threads.emplace_back([&] {
    for (int round = 0; round < 50; ++round) {
      health.set_link(LinkId(0), false);
      health.set_link(LinkId(0), true);
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_TRUE(health.all_up());
  EXPECT_EQ(health.dc_state(DcId(0)).epoch, 100u);  // 50 down/up rounds
  const RealtimeSelector::Stats stats = selector.stats();
  EXPECT_EQ(stats.calls_started, kEventThreads * kCallsPerThread);
  EXPECT_EQ(stats.failover_drops, 0u);  // empty budget never drops
  EXPECT_EQ(stats.slot_debits, stats.slot_credits);
  EXPECT_EQ(selector.held_slots(), 0u);
  EXPECT_EQ(selector.active_calls(), 0u);
  EXPECT_DOUBLE_EQ(selector.dc_cores_used(DcId(0)), 0.0);
  EXPECT_DOUBLE_EQ(selector.dc_cores_used(DcId(1)), 0.0);
}

}  // namespace
}  // namespace sb
