#include "check/fuzz_case.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.h"

namespace sb::check {

namespace {

Json location_to_json(const Location& loc) {
  Json::Object o;
  o["name"] = loc.name;
  o["lat"] = loc.latitude_deg;
  o["lon"] = loc.longitude_deg;
  o["utc"] = loc.utc_offset_hours;
  o["pop"] = loc.population_weight;
  o["region"] = loc.region;
  return Json(std::move(o));
}

Location location_from_json(const Json& j) {
  Location loc;
  loc.name = j.get("name").as_string();
  loc.latitude_deg = j.get("lat").as_number();
  loc.longitude_deg = j.get("lon").as_number();
  loc.utc_offset_hours = j.get("utc").as_number();
  loc.population_weight = j.get("pop").as_number();
  loc.region = j.get("region").as_string();
  return loc;
}

Json dc_to_json(const Datacenter& dc) {
  Json::Object o;
  o["name"] = dc.name;
  o["location"] = static_cast<std::uint64_t>(dc.location.value());
  o["core_cost"] = dc.core_cost;
  return Json(std::move(o));
}

Datacenter dc_from_json(const Json& j) {
  Datacenter dc;
  dc.name = j.get("name").as_string();
  dc.location = LocationId(static_cast<std::uint32_t>(j.get("location").as_u64()));
  dc.core_cost = j.get("core_cost").as_number();
  return dc;
}

Json link_to_json(const WanLink& l) {
  Json::Object o;
  o["a"] = static_cast<std::uint64_t>(l.a.value());
  o["b"] = static_cast<std::uint64_t>(l.b.value());
  o["latency_ms"] = l.latency_ms;
  o["cost_per_gbps"] = l.cost_per_gbps;
  return Json(std::move(o));
}

WanLink link_from_json(const Json& j) {
  WanLink l;
  l.a = LocationId(static_cast<std::uint32_t>(j.get("a").as_u64()));
  l.b = LocationId(static_cast<std::uint32_t>(j.get("b").as_u64()));
  l.latency_ms = j.get("latency_ms").as_number();
  l.cost_per_gbps = j.get("cost_per_gbps").as_number();
  return l;
}

Json call_to_json(const FuzzCall& c) {
  Json::Object o;
  o["id"] = c.id;
  o["media"] = static_cast<std::uint64_t>(c.media);
  o["start_s"] = c.start_s;
  o["duration_s"] = c.duration_s;
  o["media_change_offset_s"] = c.media_change_offset_s;
  Json::Array legs;
  legs.reserve(c.legs.size());
  for (const CallLeg& leg : c.legs) {
    Json::Object lo;
    lo["loc"] = static_cast<std::uint64_t>(leg.location.value());
    lo["join_s"] = leg.join_offset_s;
    legs.emplace_back(std::move(lo));
  }
  o["legs"] = Json(std::move(legs));
  return Json(std::move(o));
}

FuzzCall call_from_json(const Json& j) {
  FuzzCall c;
  c.id = j.get("id").as_u64();
  const std::uint64_t media = j.get("media").as_u64();
  require(media < kMediaTypeCount, "FuzzCall: bad media type");
  c.media = static_cast<MediaType>(media);
  c.start_s = j.get("start_s").as_number();
  c.duration_s = j.get("duration_s").as_number();
  c.media_change_offset_s = j.get("media_change_offset_s").as_number();
  for (const Json& lj : j.get("legs").as_array()) {
    CallLeg leg;
    leg.location =
        LocationId(static_cast<std::uint32_t>(lj.get("loc").as_u64()));
    leg.join_offset_s = lj.get("join_s").as_number();
    c.legs.push_back(leg);
  }
  require(!c.legs.empty(), "FuzzCall: no legs");
  return c;
}

Json server_to_json(const FuzzServer& s) {
  Json::Object o;
  o["dc"] = static_cast<std::uint64_t>(s.dc);
  o["cores"] = s.cores;
  return Json(std::move(o));
}

FuzzServer server_from_json(const Json& j) {
  FuzzServer s;
  s.dc = static_cast<std::uint32_t>(j.get("dc").as_u64());
  s.cores = j.get("cores").as_number();
  return s;
}

Json fault_to_json(const fault::FaultEvent& e) {
  Json::Object o;
  o["time"] = e.time;
  o["kind"] = static_cast<std::uint64_t>(e.kind);
  o["index"] = static_cast<std::uint64_t>(e.is_dc()       ? e.dc.value()
                                          : e.is_server() ? e.server.value()
                                          : e.is_worker() ? e.worker.value()
                                                          : e.link.value());
  return Json(std::move(o));
}

fault::FaultEvent fault_from_json(const Json& j) {
  fault::FaultEvent e;
  e.time = j.get("time").as_number();
  const std::uint64_t kind = j.get("kind").as_u64();
  require(kind <= 7, "FaultEvent: bad kind");
  e.kind = static_cast<fault::FaultEvent::Kind>(kind);
  const auto index = static_cast<std::uint32_t>(j.get("index").as_u64());
  if (e.is_dc()) {
    e.dc = DcId(index);
  } else if (e.is_server()) {
    e.server = ServerId(index);
  } else if (e.is_worker()) {
    e.worker = WorkerId(index);
  } else {
    e.link = LinkId(index);
  }
  return e;
}

Json options_to_json(const FuzzOptions& o) {
  Json::Object j;
  j["freeze_delay_s"] = o.freeze_delay_s;
  j["bucket_s"] = o.bucket_s;
  j["slot_s"] = o.slot_s;
  j["shard_count"] = o.shard_count;
  j["sim_threads"] = o.sim_threads;
  j["use_plan"] = o.use_plan;
  j["with_backup"] = o.with_backup;
  j["include_link_failures"] = o.include_link_failures;
  j["floor_mode"] = o.floor_mode;
  j["scenario_threads"] = o.scenario_threads;
  j["lp_method"] = o.lp_method;
  j["rebuild_storm"] = o.rebuild_storm;
  j["chaos_skip_drain_credit"] = o.chaos_skip_drain_credit;
  j["chaos_skip_server_credit"] = o.chaos_skip_server_credit;
  j["workers"] = o.workers;
  j["lease_ttl_s"] = o.lease_ttl_s;
  j["chaos_skip_wal_freeze"] = o.chaos_skip_wal_freeze;
  j["use_loop"] = o.use_loop;
  j["loop_cadence_s"] = o.loop_cadence_s;
  j["loop_band"] = o.loop_band;
  j["loop_forecast_scale"] = o.loop_forecast_scale;
  j["loop_flash"] = o.loop_flash;
  j["chaos_skip_replan"] = o.chaos_skip_replan;
  return Json(std::move(j));
}

FuzzOptions options_from_json(const Json& j) {
  FuzzOptions o;
  o.freeze_delay_s = j.get("freeze_delay_s").as_number();
  o.bucket_s = j.get("bucket_s").as_number();
  o.slot_s = j.get("slot_s").as_number();
  o.shard_count = static_cast<std::size_t>(j.get("shard_count").as_u64());
  o.sim_threads = static_cast<std::size_t>(j.get("sim_threads").as_u64());
  o.use_plan = j.get("use_plan").as_bool();
  o.with_backup = j.get("with_backup").as_bool();
  o.include_link_failures = j.get("include_link_failures").as_bool();
  o.floor_mode = static_cast<int>(j.get("floor_mode").as_i64());
  o.scenario_threads =
      static_cast<std::size_t>(j.get("scenario_threads").as_u64());
  o.lp_method = static_cast<int>(j.get("lp_method").as_i64());
  o.rebuild_storm = j.get_or("rebuild_storm", false);
  o.chaos_skip_drain_credit = j.get_or("chaos_skip_drain_credit", false);
  o.chaos_skip_server_credit = j.get_or("chaos_skip_server_credit", false);
  o.workers = static_cast<std::size_t>(j.get_or("workers", 0.0));
  o.lease_ttl_s = j.get_or("lease_ttl_s", 30.0);
  o.chaos_skip_wal_freeze = j.get_or("chaos_skip_wal_freeze", false);
  o.use_loop = j.get_or("use_loop", false);
  o.loop_cadence_s = j.get_or("loop_cadence_s", 300.0);
  o.loop_band = j.get_or("loop_band", 0.25);
  o.loop_forecast_scale = j.get_or("loop_forecast_scale", 1.0);
  o.loop_flash = static_cast<int>(j.get_or("loop_flash", 0.0));
  o.chaos_skip_replan = j.get_or("chaos_skip_replan", false);
  return o;
}

World build_world(const FuzzWorld& fw) {
  require(!fw.locations.empty(), "FuzzCase: no locations");
  require(!fw.dcs.empty(), "FuzzCase: no datacenters");
  World world;
  for (const Location& loc : fw.locations) world.add_location(loc);
  for (const Datacenter& dc : fw.dcs) {
    require(dc.location.valid() && dc.location.value() < fw.locations.size(),
            "FuzzCase: datacenter references unknown location");
    world.add_datacenter(dc);
  }
  if (!fw.servers.empty()) {
    std::vector<std::uint8_t> covered(fw.dcs.size(), 0);
    for (std::size_t s = 0; s < fw.servers.size(); ++s) {
      const FuzzServer& srv = fw.servers[s];
      require(srv.dc < fw.dcs.size(),
              "FuzzCase: server references unknown DC");
      require(srv.cores > 0.0, "FuzzCase: server cores");
      covered[srv.dc] = 1;
      world.add_server({fw.dcs[srv.dc].name + "-srv" + std::to_string(s),
                        DcId(srv.dc), srv.cores});
    }
    for (std::size_t x = 0; x < covered.size(); ++x) {
      require(covered[x] != 0, "FuzzCase: fleet does not cover every DC");
    }
  }
  return world;
}

Topology build_topology(const World& world, const FuzzWorld& fw) {
  Topology topo(world);
  for (const WanLink& l : fw.links) {
    topo.add_link(l.a, l.b, l.latency_ms, l.cost_per_gbps);
  }
  topo.compute_paths();
  require(topo.connected(), "FuzzCase: topology is disconnected");
  return topo;
}

CallRecordDatabase build_db(const FuzzCase& c, CallConfigRegistry& registry) {
  CallRecordDatabase db;
  db.reserve(c.calls.size());
  for (const FuzzCall& fc : c.calls) {
    // Reconstruct the config from the legs: the trace generator expands
    // every config entry into exactly one leg per participant, so grouping
    // legs by location recovers the original entry multiset.
    std::map<LocationId, std::uint32_t> counts;
    for (const CallLeg& leg : fc.legs) {
      require(leg.location.valid() &&
                  leg.location.value() < c.world.locations.size(),
              "FuzzCase: call leg references unknown location");
      ++counts[leg.location];
    }
    std::vector<ConfigEntry> entries;
    entries.reserve(counts.size());
    for (const auto& [loc, n] : counts) entries.push_back({loc, n});
    const ConfigId config =
        registry.intern(CallConfig::make(std::move(entries), fc.media));
    CallRecord rec;
    rec.id = CallId(static_cast<std::uint32_t>(fc.id));
    rec.config = config;
    rec.start_s = fc.start_s;
    rec.duration_s = fc.duration_s;
    rec.media_change_offset_s = fc.media_change_offset_s;
    rec.legs = fc.legs;
    db.add(std::move(rec));
  }
  return db;
}

fault::FaultSchedule build_faults(const FuzzCase& c) {
  for (const fault::FaultEvent& e : c.faults) {
    if (e.is_dc()) {
      require(e.dc.valid() && e.dc.value() < c.world.dcs.size(),
              "FuzzCase: fault references unknown DC");
    } else if (e.is_server()) {
      require(e.server.valid() && e.server.value() < c.world.servers.size(),
              "FuzzCase: fault references unknown server");
    } else if (e.is_worker()) {
      require(e.worker.valid() && e.worker.value() < c.options.workers,
              "FuzzCase: fault references unknown worker");
    } else {
      require(e.link.valid() && e.link.value() < c.world.links.size(),
              "FuzzCase: fault references unknown link");
    }
  }
  return fault::FaultSchedule::from_events(c.faults);
}

}  // namespace

Materialized::Materialized(const FuzzCase& c)
    : world(build_world(c.world)),
      topology(build_topology(world, c.world)),
      latency(LatencyMatrix::from_topology(world, topology)),
      registry(),
      loads(LoadModel::paper_default()),
      db(build_db(c, registry)),
      faults(build_faults(c)) {}

Json FuzzCase::to_json() const {
  Json::Object root;
  root["seed"] = seed;
  root["window_start_s"] = window_start_s;
  root["window_end_s"] = window_end_s;

  Json::Object world_obj;
  Json::Array locations;
  for (const Location& loc : world.locations) {
    locations.push_back(location_to_json(loc));
  }
  world_obj["locations"] = Json(std::move(locations));
  Json::Array dcs;
  for (const Datacenter& dc : world.dcs) dcs.push_back(dc_to_json(dc));
  world_obj["dcs"] = Json(std::move(dcs));
  Json::Array links;
  for (const WanLink& l : world.links) links.push_back(link_to_json(l));
  world_obj["links"] = Json(std::move(links));
  if (!world.servers.empty()) {
    // Emitted only for fleet cases: a no-fleet case serializes byte-
    // identically to the pre-fleet format.
    Json::Array servers;
    for (const FuzzServer& s : world.servers) {
      servers.push_back(server_to_json(s));
    }
    world_obj["servers"] = Json(std::move(servers));
  }
  root["world"] = Json(std::move(world_obj));

  Json::Array call_arr;
  call_arr.reserve(calls.size());
  for (const FuzzCall& c : calls) call_arr.push_back(call_to_json(c));
  root["calls"] = Json(std::move(call_arr));

  Json::Array fault_arr;
  for (const fault::FaultEvent& e : faults) fault_arr.push_back(fault_to_json(e));
  root["faults"] = Json(std::move(fault_arr));

  root["options"] = options_to_json(options);
  return Json(std::move(root));
}

FuzzCase FuzzCase::from_json(const Json& j) {
  FuzzCase c;
  c.seed = j.get("seed").as_u64();
  c.window_start_s = j.get("window_start_s").as_number();
  c.window_end_s = j.get("window_end_s").as_number();

  const Json& world_obj = j.get("world");
  for (const Json& lj : world_obj.get("locations").as_array()) {
    c.world.locations.push_back(location_from_json(lj));
  }
  for (const Json& dj : world_obj.get("dcs").as_array()) {
    c.world.dcs.push_back(dc_from_json(dj));
  }
  for (const Json& lj : world_obj.get("links").as_array()) {
    c.world.links.push_back(link_from_json(lj));
  }
  if (const Json* servers = world_obj.find("servers")) {
    for (const Json& sj : servers->as_array()) {
      c.world.servers.push_back(server_from_json(sj));
    }
  }

  for (const Json& cj : j.get("calls").as_array()) {
    c.calls.push_back(call_from_json(cj));
  }
  for (const Json& fj : j.get("faults").as_array()) {
    c.faults.push_back(fault_from_json(fj));
  }
  c.options = options_from_json(j.get("options"));
  return c;
}

std::string FuzzCase::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " locs=" << world.locations.size()
     << " dcs=" << world.dcs.size() << " links=" << world.links.size();
  if (!world.servers.empty()) os << " servers=" << world.servers.size();
  os << " calls=" << calls.size() << " faults=" << faults.size()
     << (options.use_plan ? " plan" : " no-plan")
     << (options.rebuild_storm ? " storm" : "")
     << (options.chaos_skip_drain_credit ? " chaos" : "")
     << (options.chaos_skip_server_credit ? " chaos-server" : "")
     << (options.chaos_skip_wal_freeze ? " chaos-wal" : "")
     << (options.chaos_skip_replan ? " chaos-replan" : "");
  if (options.workers > 0) os << " workers=" << options.workers;
  if (options.use_loop) {
    os << " loop(cadence=" << options.loop_cadence_s
       << " band=" << options.loop_band
       << " fc=" << options.loop_forecast_scale;
    if (options.loop_flash == 1) os << " spike";
    if (options.loop_flash == 2) os << " rebound";
    os << ")";
  }
  return os.str();
}

std::unique_ptr<Materialized> FuzzCase::materialize() const {
  return std::make_unique<Materialized>(*this);
}

void write_repro(const FuzzCase& c, const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "write_repro: cannot open " + path);
  out << c.to_json().dump(2) << "\n";
  require(out.good(), "write_repro: write failed for " + path);
}

FuzzCase load_repro(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_repro: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FuzzCase::from_json(Json::parse(buf.str()));
}

}  // namespace sb::check
