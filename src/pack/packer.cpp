#include "pack/packer.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "obs/span.h"

namespace sb::pack {

ServerPacker::ServerPacker(const World& world, PackOptions options,
                           const fault::HealthTable* health)
    : world_(&world),
      options_(options),
      health_(health),
      server_count_(world.server_count()),
      admits_metric_(obs::MetricsRegistry::global().counter("sb.pack.admits")),
      releases_metric_(
          obs::MetricsRegistry::global().counter("sb.pack.releases")),
      overcommit_metric_(obs::MetricsRegistry::global().counter(
          "sb.pack.overcommit_admits")),
      cas_retries_metric_(
          obs::MetricsRegistry::global().counter("sb.pack.cas_retries")) {
  require(server_count_ > 0, "ServerPacker: world has no servers");
  require(health_ == nullptr || health_->server_count() == server_count_,
          "ServerPacker: health table does not cover the fleet");
  slots_ = std::make_unique<Slot[]>(server_count_);
  capacity_mc_.reserve(server_count_);
  for (const MediaServer& server : world.servers()) {
    capacity_mc_.push_back(to_millicores(server.cores));
  }
}

bool ServerPacker::try_claim(ServerId server, std::int64_t need_mc,
                             std::uint32_t* retries) {
  Slot& slot = slots_[server.value()];
  const std::int64_t cap = capacity_mc_[server.value()];
  std::int64_t used = slot.used_mc.load(std::memory_order_relaxed);
  for (std::uint32_t attempt = 0; attempt < options_.max_cas_retries;
       ++attempt) {
    if (used + need_mc > cap) return false;
    if (slot.used_mc.compare_exchange_weak(used, used + need_mc,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
      return true;
    }
    if (retries != nullptr) ++*retries;
    cas_retries_metric_.inc();
  }
  return false;
}

void ServerPacker::record_admit(ServerId server, std::int64_t need_mc) {
  Slot& slot = slots_[server.value()];
  slot.admits.fetch_add(1, std::memory_order_relaxed);
  slot.admitted_mc.fetch_add(need_mc, std::memory_order_relaxed);
  admits_metric_.inc();
}

ServerId ServerPacker::admit_bounded(DcId dc, double cores, ServerId exclude,
                                     std::uint32_t* retries) {
  const std::vector<ServerId>& fleet = world_->servers_in_dc(dc);
  if (fleet.empty()) return ServerId();
  const std::int64_t need_mc = to_millicores(cores);
  const std::int64_t penalty_mc =
      to_millicores(options_.anti_frag_empty_penalty_cores);
  // Rescan until a claim lands or no candidate fits. Each failed claim means
  // another thread took the residual we saw, so progress is global.
  for (;;) {
    ServerId best;
    std::int64_t best_score = std::numeric_limits<std::int64_t>::max();
    for (ServerId sid : fleet) {
      if (sid == exclude || !server_ok(sid)) continue;
      const std::int64_t used =
          slots_[sid.value()].used_mc.load(std::memory_order_relaxed);
      const std::int64_t residual = capacity_mc_[sid.value()] - used - need_mc;
      if (residual < 0) continue;
      // Best fit: minimum residual after placement; waking an empty server
      // costs an extra penalty. Ties break on the lowest ServerId (fleet is
      // in id order), so the scan is deterministic.
      const std::int64_t score = residual + (used == 0 ? penalty_mc : 0);
      if (score < best_score) {
        best_score = score;
        best = sid;
      }
    }
    if (!best.valid()) return ServerId();
    if (try_claim(best, need_mc, retries)) {
      record_admit(best, need_mc);
      return best;
    }
  }
}

ServerId ServerPacker::admit_overflow(DcId dc, double cores, ServerId exclude,
                                      bool up_only) {
  const std::vector<ServerId>& fleet = world_->servers_in_dc(dc);
  ServerId chosen;
  double best_ratio = std::numeric_limits<double>::max();
  for (ServerId sid : fleet) {
    if (sid == exclude) continue;
    if (up_only && !server_ok(sid)) continue;
    const double used = static_cast<double>(
        slots_[sid.value()].used_mc.load(std::memory_order_relaxed));
    const double cap = static_cast<double>(capacity_mc_[sid.value()]);
    const double ratio = cap > 0.0 ? used / cap : used;
    if (ratio < best_ratio) {
      best_ratio = ratio;
      chosen = sid;
    }
  }
  if (!chosen.valid()) return chosen;
  const std::int64_t need_mc = to_millicores(cores);
  slots_[chosen.value()].used_mc.fetch_add(need_mc, std::memory_order_acq_rel);
  record_admit(chosen, need_mc);
  overcommit_admits_.fetch_add(1, std::memory_order_relaxed);
  overcommit_metric_.inc();
  return chosen;
}

ServerId ServerPacker::admit(DcId dc, double cores, ServerId exclude,
                             std::uint32_t* retries) {
  obs::Span span("pack.admit", obs::Subsystem::kPack);
  span.attr(obs::AttrKey::kDc, dc.value());
  std::uint32_t local_retries = 0;
  ServerId chosen = admit_bounded(dc, cores, exclude, &local_retries);
  if (!chosen.valid()) {
    // Fail open: overflow onto the relatively least-loaded server, up
    // servers first. A down fleet still hosts (degraded beats refusing
    // service — the selector's DC failover handles real evacuation).
    chosen = admit_overflow(dc, cores, exclude, /*up_only=*/true);
    if (!chosen.valid()) {
      chosen = admit_overflow(dc, cores, exclude, /*up_only=*/false);
    }
  }
  if (retries != nullptr) *retries += local_retries;
  if (chosen.valid()) span.attr(obs::AttrKey::kServer, chosen.value());
  span.attr(obs::AttrKey::kCasRetries, local_retries);
  return chosen;
}

bool ServerPacker::try_admit_to(ServerId server, double cores) {
  require(server.valid() && server.value() < server_count_,
          "try_admit_to: bad server id");
  const std::int64_t need_mc = to_millicores(cores);
  if (!try_claim(server, need_mc, nullptr)) return false;
  record_admit(server, need_mc);
  return true;
}

void ServerPacker::release(ServerId server, double cores) {
  require(server.valid() && server.value() < server_count_,
          "release: bad server id");
  const std::int64_t need_mc = to_millicores(cores);
  Slot& slot = slots_[server.value()];
  slot.used_mc.fetch_sub(need_mc, std::memory_order_acq_rel);
  slot.releases.fetch_add(1, std::memory_order_relaxed);
  slot.released_mc.fetch_add(need_mc, std::memory_order_relaxed);
  releases_metric_.inc();
}

double ServerPacker::server_cores_used(ServerId server) const {
  return static_cast<double>(
             slots_[server.value()].used_mc.load(std::memory_order_acquire)) /
         1000.0;
}

double ServerPacker::server_capacity(ServerId server) const {
  return static_cast<double>(capacity_mc_[server.value()]) / 1000.0;
}

double ServerPacker::dc_cores_used(DcId dc) const {
  std::int64_t total = 0;
  for (ServerId sid : world_->servers_in_dc(dc)) {
    total += slots_[sid.value()].used_mc.load(std::memory_order_acquire);
  }
  return static_cast<double>(total) / 1000.0;
}

double ServerPacker::fragmentation(DcId dc) const {
  std::int64_t total_free = 0;
  std::int64_t max_free = 0;
  for (ServerId sid : world_->servers_in_dc(dc)) {
    if (!server_ok(sid)) continue;
    const std::int64_t used =
        slots_[sid.value()].used_mc.load(std::memory_order_acquire);
    const std::int64_t free_mc =
        std::max<std::int64_t>(0, capacity_mc_[sid.value()] - used);
    total_free += free_mc;
    max_free = std::max(max_free, free_mc);
  }
  if (total_free <= 0) return 0.0;
  return 1.0 - static_cast<double>(max_free) / static_cast<double>(total_free);
}

std::vector<ServerStats> ServerPacker::stats() const {
  std::vector<ServerStats> out;
  out.reserve(server_count_);
  for (std::size_t i = 0; i < server_count_; ++i) {
    const ServerId sid(static_cast<std::uint32_t>(i));
    const Slot& slot = slots_[i];
    out.push_back({
        .server = sid,
        .dc = world_->server(sid).dc,
        .capacity_cores = static_cast<double>(capacity_mc_[i]) / 1000.0,
        .used_cores = static_cast<double>(
                          slot.used_mc.load(std::memory_order_acquire)) /
                      1000.0,
        .admits = slot.admits.load(std::memory_order_relaxed),
        .releases = slot.releases.load(std::memory_order_relaxed),
        .admitted_mc = slot.admitted_mc.load(std::memory_order_relaxed),
        .released_mc = slot.released_mc.load(std::memory_order_relaxed),
    });
  }
  return out;
}

}  // namespace sb::pack
