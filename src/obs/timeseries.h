// TimeSeriesRecorder: samples the MetricsRegistry on a sim-time cadence into
// per-metric series — the telemetry feed for offline analysis (sb_report)
// and the planned closed-loop autoscaler (ROADMAP). Counters sample their
// cumulative value (so the sum of per-interval deltas reproduces the final
// snapshot exactly), gauges their current value, histograms a fixed set of
// derived columns (count/sum/p50/p99).
//
// Always compiled: with -DSB_METRICS=OFF snapshots are empty, so a recorder
// produces a structurally valid but column-less export.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace sb::obs {

struct TimeSeriesOptions {
  /// Minimum sim-time spacing between samples.
  double period_s = 60.0;
};

class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(MetricsRegistry* registry,
                              TimeSeriesOptions options = {});

  /// Snapshots the registry if `sim_time_s` has reached the next cadence
  /// point; cheap (one relaxed load) otherwise. Thread-safe; concurrent
  /// callers race benignly for the same cadence point (one wins). Non-
  /// monotone times are tolerated: a sample is taken only when the clock
  /// crosses the next due point.
  void sample(double sim_time_s);

  /// Unconditional snapshot (run epilogues: the last sample then carries
  /// the registry's final totals regardless of cadence alignment).
  void force_sample(double sim_time_s);

  [[nodiscard]] std::size_t sample_count() const;
  [[nodiscard]] std::size_t column_count() const;

  /// Cumulative counter total over the recording: last sample minus first
  /// sample of `name`, which equals the sum of per-interval deltas. 0 when
  /// the counter never appeared.
  [[nodiscard]] std::uint64_t counter_delta_total(std::string_view name) const;

  /// One series for `column` (full column name, e.g. "counter:sb.sim.calls"
  /// or "histogram:sb.lp.solve_s:p99"); empty when absent. Samples from
  /// before the column first appeared read 0.
  [[nodiscard]] std::vector<double> series(std::string_view column) const;

  /// The most recent sample of `column`, or 0 when the column is absent or
  /// nothing was sampled yet. The closed-loop controller's tick reads the
  /// feed through this instead of copying whole series.
  [[nodiscard]] double last(std::string_view column) const;

  /// Wide CSV: header `t_s,<column>...`, one row per sample; columns that
  /// appeared mid-run backfill 0 for earlier rows. Counter columns are
  /// cumulative values named `counter:<name>`; gauges `gauge:<name>`;
  /// histograms expand to `histogram:<name>:{count,sum,p50,p99}`.
  void write_csv(std::ostream& out) const;

  /// {"period_s": .., "t": [..], "series": {column: [..]}}
  void write_json(std::ostream& out) const;

 private:
  struct Sample {
    double t = 0.0;
    std::vector<double> values;  ///< parallel to columns_ (prefix thereof)
  };

  /// Appends a snapshot row, growing columns_ for new metrics.
  void append_locked(double sim_time_s);
  /// Index of `column`, creating it when `create`; npos when absent.
  std::size_t column_index(std::string_view column, bool create);

  MetricsRegistry* registry_;
  TimeSeriesOptions options_;

  mutable std::mutex mutex_;
  std::atomic<double> next_due_;
  std::vector<std::string> columns_;
  std::map<std::string, std::size_t, std::less<>> column_of_;
  std::vector<Sample> samples_;
};

}  // namespace sb::obs
