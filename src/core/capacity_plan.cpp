#include "core/capacity_plan.h"

#include <algorithm>

#include "common/error.h"

namespace sb {

double CapacityPlan::dc_total_cores(DcId dc) const {
  require(dc.valid() && dc.value() < dc_serving_cores.size(),
          "dc_total_cores: bad dc");
  return dc_serving_cores[dc.value()] + dc_backup_cores[dc.value()];
}

double CapacityPlan::total_cores() const {
  double acc = 0.0;
  for (double v : dc_serving_cores) acc += v;
  for (double v : dc_backup_cores) acc += v;
  return acc;
}

double CapacityPlan::total_wan_gbps() const {
  double acc = 0.0;
  for (double v : link_gbps) acc += v;
  return acc;
}

double CapacityPlan::compute_cost(const World& world) const {
  require(dc_serving_cores.size() == world.dc_count(),
          "compute_cost: shape mismatch");
  double acc = 0.0;
  for (std::size_t x = 0; x < dc_serving_cores.size(); ++x) {
    const double cores = dc_serving_cores[x] + dc_backup_cores[x];
    acc += world.datacenter(DcId(static_cast<std::uint32_t>(x))).core_cost *
           cores;
  }
  return acc;
}

double CapacityPlan::network_cost(const Topology& topo) const {
  require(link_gbps.size() == topo.link_count(),
          "network_cost: shape mismatch");
  double acc = 0.0;
  for (std::size_t l = 0; l < link_gbps.size(); ++l) {
    acc += topo.link(LinkId(static_cast<std::uint32_t>(l))).cost_per_gbps *
           link_gbps[l];
  }
  return acc;
}

double CapacityPlan::total_cost(const World& world, const Topology& topo) const {
  return compute_cost(world) + network_cost(topo);
}

CapacityPlan CapacityPlan::zeros(const World& world, const Topology& topo) {
  CapacityPlan plan;
  plan.dc_serving_cores.assign(world.dc_count(), 0.0);
  plan.dc_backup_cores.assign(world.dc_count(), 0.0);
  plan.link_gbps.assign(topo.link_count(), 0.0);
  return plan;
}

CapacityPlan max_capacity(const CapacityPlan& a, const CapacityPlan& b) {
  require(a.dc_serving_cores.size() == b.dc_serving_cores.size() &&
              a.link_gbps.size() == b.link_gbps.size(),
          "max_capacity: shape mismatch");
  CapacityPlan out = a;
  for (std::size_t x = 0; x < out.dc_serving_cores.size(); ++x) {
    // Compare total cores per DC; keep the larger split.
    const double at = a.dc_serving_cores[x] + a.dc_backup_cores[x];
    const double bt = b.dc_serving_cores[x] + b.dc_backup_cores[x];
    if (bt > at) {
      out.dc_serving_cores[x] = b.dc_serving_cores[x];
      out.dc_backup_cores[x] = b.dc_backup_cores[x];
    }
  }
  for (std::size_t l = 0; l < out.link_gbps.size(); ++l) {
    out.link_gbps[l] = std::max(a.link_gbps[l], b.link_gbps[l]);
  }
  return out;
}

}  // namespace sb
