// The demand matrix D_tc (Table 2): for each provisioning time slot t and
// call config c, the expected number of concurrent calls. This is the
// primary LP input — built either from ground-truth call records (Table 3)
// or from per-config forecasts (Table 4).
#pragma once

#include <vector>

#include "calls/call_config.h"
#include "calls/call_record.h"
#include "calls/media.h"
#include "common/types.h"

namespace sb {

/// Dense (slot x config) matrix of concurrent-call demand. Values are
/// fractional: a call active for half a slot contributes 0.5 to that slot's
/// average concurrency.
class DemandMatrix {
 public:
  DemandMatrix(std::size_t slot_count, std::size_t config_count);

  /// Builds average-concurrency demand from records over [start_s, end_s)
  /// with `slot_s`-second slots (the paper uses 30-minute buckets). Records
  /// of configs outside `configs` are ignored; `configs` also fixes the
  /// column order (column i = configs[i]).
  static DemandMatrix from_records(const CallRecordDatabase& db,
                                   const std::vector<ConfigId>& configs,
                                   double slot_s, SimTime start_s,
                                   SimTime end_s);

  [[nodiscard]] double demand(TimeSlot t, std::size_t config_col) const;
  void set_demand(TimeSlot t, std::size_t config_col, double calls);
  void add_demand(TimeSlot t, std::size_t config_col, double calls);

  [[nodiscard]] std::size_t slot_count() const { return slots_; }
  [[nodiscard]] std::size_t config_count() const { return configs_.size(); }

  /// The config interned at column `col`.
  [[nodiscard]] ConfigId config_at(std::size_t col) const;
  /// Column of `config`; throws if the config is not part of this matrix.
  [[nodiscard]] std::size_t column_of(ConfigId config) const;
  [[nodiscard]] const std::vector<ConfigId>& configs() const {
    return configs_;
  }

  /// Sum of demand over all slots and configs.
  [[nodiscard]] double total() const;

 private:
  friend DemandMatrix make_demand_matrix(std::vector<ConfigId> configs,
                                         std::size_t slot_count);
  std::size_t slots_;
  std::vector<ConfigId> configs_;
  std::vector<double> cells_;
};

/// Creates an empty matrix with explicit config columns (used by the
/// forecaster to assemble projected demand).
DemandMatrix make_demand_matrix(std::vector<ConfigId> configs,
                                std::size_t slot_count);

/// Core demand contributed by participants from `location` per slot:
/// sum over configs of D_tc * CL(media(c)) * (participants of c at the
/// location). This is the Fig 3 per-country series.
std::vector<double> location_core_demand(const DemandMatrix& demand,
                                         const CallConfigRegistry& registry,
                                         const LoadModel& loads,
                                         LocationId location);

}  // namespace sb
