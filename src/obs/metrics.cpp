#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "obs/snapshot.h"

namespace sb::obs {

double HistogramData::bucket_lower(std::size_t bucket) const {
  const double growth =
      std::pow(options.max / options.min,
               1.0 / static_cast<double>(options.bucket_count));
  return options.min * std::pow(growth, static_cast<double>(bucket - 1));
}

double HistogramData::bucket_upper(std::size_t bucket) const {
  const double growth =
      std::pow(options.max / options.min,
               1.0 / static_cast<double>(options.bucket_count));
  return options.min * std::pow(growth, static_cast<double>(bucket));
}

double HistogramData::quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double prev = static_cast<double>(cumulative);
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < rank) continue;
    double value;
    if (b == 0) {
      value = min;  // underflow bucket: best estimate is the observed min
    } else if (b == buckets.size() - 1) {
      value = max;  // overflow bucket
    } else {
      // Log-interpolate inside the bucket (buckets are geometric).
      const double lower = bucket_lower(b);
      const double upper = bucket_upper(b);
      const double frac =
          std::clamp((rank - prev) / static_cast<double>(buckets[b]), 0.0, 1.0);
      value = lower * std::pow(upper / lower, frac);
    }
    return std::clamp(value, min, max);
  }
  return max;
}

HistogramData histogram_diff(const HistogramData& before,
                             const HistogramData& after) {
  // An empty "before" (e.g. the metric didn't exist yet) diffs to "after".
  if (before.buckets.empty()) return after;
  require(before.buckets.size() == after.buckets.size(),
          "histogram_diff: mismatched bucket layouts");
  HistogramData out;
  out.options = after.options;
  out.buckets.resize(after.buckets.size());
  for (std::size_t b = 0; b < after.buckets.size(); ++b) {
    require(after.buckets[b] >= before.buckets[b],
            "histogram_diff: 'after' is not a superset of 'before'");
    out.buckets[b] = after.buckets[b] - before.buckets[b];
  }
  out.count = after.count - before.count;
  out.sum = after.sum - before.sum;
  // Exact extrema of just the delta window are unrecoverable from bucket
  // counts, and reporting the lifetime min/max would claim values the
  // window never saw. When `before` was empty the window IS the lifetime,
  // so the exact extrema carry over; otherwise estimate at bucket
  // resolution: the edges of the lowest/highest occupied window bucket
  // (underflow has no finite lower edge — fall back to the exact lifetime
  // min, a lower bound; likewise overflow uses the lifetime max).
  if (out.count == 0) {
    out.min = 0.0;
    out.max = 0.0;
  } else if (before.count == 0) {
    out.min = after.min;
    out.max = after.max;
  } else {
    std::size_t lo = 0;
    while (lo < out.buckets.size() && out.buckets[lo] == 0) ++lo;
    std::size_t hi = out.buckets.size();
    while (hi > 0 && out.buckets[hi - 1] == 0) --hi;
    --hi;
    out.min = lo == 0 ? after.min : out.bucket_lower(lo);
    out.max = hi == out.buckets.size() - 1 ? after.max : out.bucket_upper(hi);
  }
  return out;
}

#ifdef SB_METRICS_ENABLED

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShardCount;
  return index;
}

namespace {

void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::add(double d) { atomic_add(value_, d); }

void Gauge::max_of(double v) { atomic_max(value_, v); }

Histogram::Histogram(HistogramOptions options) : options_(options) {
  require(options_.min > 0.0 && options_.max > options_.min,
          "Histogram: need 0 < min < max (log-spaced buckets)");
  require(options_.bucket_count >= 1, "Histogram: need at least one bucket");
  inv_log_growth_ = static_cast<double>(options_.bucket_count) /
                    std::log(options_.max / options_.min);
  shards_ = std::make_unique<Shard[]>(kShardCount);
  for (std::size_t s = 0; s < kShardCount; ++s) {
    shards_[s].buckets = std::make_unique<std::atomic<std::uint64_t>[]>(
        options_.bucket_count + 2);
  }
}

std::size_t Histogram::bucket_of(double value) const {
  if (!(value >= options_.min)) return 0;  // underflow (and NaN)
  if (value >= options_.max) return options_.bucket_count + 1;
  const auto bucket = static_cast<std::size_t>(
      std::log(value / options_.min) * inv_log_growth_);
  // Guard the floating-point edge where value ~= max rounds past the end.
  return 1 + std::min(bucket, options_.bucket_count - 1);
}

void Histogram::record(double value) {
  Shard& shard = shards_[shard_index()];
  shard.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  // First sample initializes the extrema; count orders the check.
  if (shard.count.fetch_add(1, std::memory_order_relaxed) == 0) {
    shard.min.store(value, std::memory_order_relaxed);
    shard.max.store(value, std::memory_order_relaxed);
  } else {
    atomic_min(shard.min, value);
    atomic_max(shard.max, value);
  }
  atomic_add(shard.sum, value);
}

HistogramData Histogram::collect() const {
  HistogramData data;
  data.options = options_;
  data.buckets.assign(options_.bucket_count + 2, 0);
  bool first = true;
  for (std::size_t s = 0; s < kShardCount; ++s) {
    const Shard& shard = shards_[s];
    const std::uint64_t n = shard.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    for (std::size_t b = 0; b < data.buckets.size(); ++b) {
      data.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    data.count += n;
    data.sum += shard.sum.load(std::memory_order_relaxed);
    const double lo = shard.min.load(std::memory_order_relaxed);
    const double hi = shard.max.load(std::memory_order_relaxed);
    data.min = first ? lo : std::min(data.min, lo);
    data.max = first ? hi : std::max(data.max, hi);
    first = false;
  }
  return data;
}

void Histogram::reset() {
  for (std::size_t s = 0; s < kShardCount; ++s) {
    Shard& shard = shards_[s];
    for (std::size_t b = 0; b < options_.bucket_count + 2; ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(0.0, std::memory_order_relaxed);
    shard.max.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      HistogramOptions options) {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>(options))
              .first->second;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back({name, histogram->collect()});
  }
  return snap;
}

#else  // !SB_METRICS_ENABLED

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsSnapshot MetricsRegistry::snapshot() const { return {}; }

#endif  // SB_METRICS_ENABLED

}  // namespace sb::obs
