// Linear-program model builder. Switchboard's provisioning (Eq 3-9),
// allocation (Eq 10), and the Locality-First backup plan (Eq 1-2) are all
// expressed against this interface and solved by the from-scratch simplex
// implementations in this module (the paper treats its LP solver as a black
// box; see DESIGN.md substitutions).
//
// Conventions: minimization only; every variable must have a finite lower
// bound (all of Switchboard's variables are non-negative); upper bounds are
// optional.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/error.h"

namespace sb::lp {

/// +infinity for "no upper bound".
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// One coefficient of a constraint row.
struct Term {
  int var = -1;
  double coeff = 0.0;
};

enum class Sense { kLe, kGe, kEq };

struct Variable {
  double lower = 0.0;
  double upper = kInf;
  double cost = 0.0;
  std::string name;
};

struct Constraint {
  std::vector<Term> terms;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

/// A minimization LP under construction.
class Model {
 public:
  /// Adds a variable; returns its index. `lower` must be finite.
  int add_variable(double lower, double upper, double cost,
                   std::string name = "");

  /// Adds a constraint row; duplicate variable terms are merged. Terms with
  /// out-of-range variable indices throw.
  int add_constraint(std::vector<Term> terms, Sense sense, double rhs,
                     std::string name = "");

  [[nodiscard]] std::size_t variable_count() const { return vars_.size(); }
  [[nodiscard]] std::size_t constraint_count() const { return rows_.size(); }
  [[nodiscard]] const Variable& variable(int v) const;
  [[nodiscard]] const Constraint& constraint(int c) const;
  [[nodiscard]] const std::vector<Variable>& variables() const { return vars_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return rows_;
  }

  /// Objective value of an assignment (no feasibility check).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> rows_;
};

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

std::string to_string(SolveStatus s);

/// Result of a solve. `values` are in the original model's variable space
/// (including fixed/shifted variables mapped back).
struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;
  std::size_t iterations = 0;

  [[nodiscard]] bool optimal() const { return status == SolveStatus::kOptimal; }
};

/// Feasibility report from validate_solution().
struct ValidationReport {
  bool feasible = true;
  double max_violation = 0.0;
  std::string worst;  ///< name/description of the most violated row or bound
};

/// Independently checks `values` against all bounds and constraints of
/// `model` — the test suite runs every solver answer through this.
ValidationReport validate_solution(const Model& model,
                                   const std::vector<double>& values,
                                   double tolerance = 1e-6);

}  // namespace sb::lp
