
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation_plan.cpp" "src/core/CMakeFiles/sb_core.dir/allocation_plan.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/allocation_plan.cpp.o.d"
  "/root/repo/src/core/backup_lp.cpp" "src/core/CMakeFiles/sb_core.dir/backup_lp.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/backup_lp.cpp.o.d"
  "/root/repo/src/core/capacity_plan.cpp" "src/core/CMakeFiles/sb_core.dir/capacity_plan.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/capacity_plan.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/sb_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/failure.cpp" "src/core/CMakeFiles/sb_core.dir/failure.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/failure.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/sb_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/provisioner.cpp" "src/core/CMakeFiles/sb_core.dir/provisioner.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/provisioner.cpp.o.d"
  "/root/repo/src/core/realtime.cpp" "src/core/CMakeFiles/sb_core.dir/realtime.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/realtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sb_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/calls/CMakeFiles/sb_calls.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/sb_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/sb_kvstore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
