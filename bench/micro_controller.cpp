// google-benchmark microbenchmarks for the realtime path: MP selector
// assign/freeze/end cycles (single-threaded and contended multi-threaded)
// and KV-store operations (without injected latency, to measure the
// data-structure cost itself). Alongside the usual console table, results
// are emitted as `{"bench": ...}` JSON lines (see bench_util.h).
#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_util.h"
#include "core/realtime.h"
#include "geo/world_presets.h"
#include "kvstore/kvstore.h"

namespace sb {
namespace {

struct Fixture {
  GeoModel geo = make_apac_world();
  CallConfigRegistry registry;
  LoadModel loads = LoadModel::paper_default();
  AllocationPlan plan{48, 1, 5, 1800.0};
  CallConfig config = CallConfig::make({{LocationId(0), 3}},
                                       MediaType::kVideo);

  Fixture() {
    const ConfigId id = registry.intern(config);
    plan.config_columns = {id};
    for (TimeSlot t = 0; t < 48; ++t) {
      for (std::uint32_t x = 0; x < 5; ++x) {
        plan.set_quota(t, 0, DcId(x), 1u << 20);  // effectively unlimited
      }
    }
  }

  [[nodiscard]] EvalContext ctx() {
    return EvalContext{&geo.world, &geo.topology, &geo.latency, &registry,
                       &loads};
  }
};

void BM_SelectorAssignFreezeEnd(benchmark::State& state) {
  Fixture f;
  RealtimeSelector selector(f.ctx(), &f.plan, {});
  std::uint32_t next = 0;
  for (auto _ : state) {
    const CallId call(next++);
    selector.on_call_start(call, LocationId(0), 0.0);
    selector.on_config_frozen(call, f.config, 300.0);
    selector.on_call_end(call, 400.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 3);
}
BENCHMARK(BM_SelectorAssignFreezeEnd);

// Shared lock-striped selector driven by google-benchmark's thread pool:
// measures the whole assign/freeze/end cycle under contention. Call ids
// come from one atomic counter, so threads spread across shards exactly
// like production signaling traffic. The selector is rebuilt per run so the
// Threads(1)/(4)/(8) variants all start from identical state (empty call
// tables, zeroed stats/usage) instead of inheriting the previous variant's
// bucket growth and counters. Thread 0 does the rebuild; the barrier at
// loop entry orders it before any thread's first iteration.
class SelectorContended : public benchmark::Fixture {
 public:
  void SetUp(benchmark::State& state) override {
    if (state.thread_index() == 0) {
      world_ = std::make_unique<sb::Fixture>();
      selector_ = std::make_unique<RealtimeSelector>(
          world_->ctx(), &world_->plan, RealtimeOptions{});
      next_.store(0, std::memory_order_relaxed);
    }
  }
  void TearDown(benchmark::State& state) override {
    if (state.thread_index() == 0) {
      selector_.reset();
      world_.reset();
    }
  }

 protected:
  std::unique_ptr<sb::Fixture> world_;
  std::unique_ptr<RealtimeSelector> selector_;
  std::atomic<std::uint32_t> next_{0};
};

BENCHMARK_DEFINE_F(SelectorContended, Cycle)(benchmark::State& state) {
  for (auto _ : state) {
    const CallId call(next_.fetch_add(1, std::memory_order_relaxed));
    selector_->on_call_start(call, LocationId(0), 0.0);
    selector_->on_config_frozen(call, world_->config, 300.0);
    selector_->on_call_end(call, 400.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 3);
}
BENCHMARK_REGISTER_F(SelectorContended, Cycle)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8);

void BM_ClosestDcLookup(benchmark::State& state) {
  Fixture f;
  const std::vector<DcId> dcs = f.geo.world.dc_ids();
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.geo.latency.closest_dc(
        LocationId(i++ % f.geo.world.location_count()), dcs));
  }
}
BENCHMARK(BM_ClosestDcLookup);

void BM_KvStoreSetNoLatency(benchmark::State& state) {
  KvStoreOptions options;
  options.inject_latency = false;
  KvStore store(options);
  std::uint64_t i = 0;
  for (auto _ : state) {
    store.set("call:" + std::to_string(i++ % 4096) + ":dc", "3");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KvStoreSetNoLatency);

void BM_KvStoreIncrNoLatency(benchmark::State& state) {
  KvStoreOptions options;
  options.inject_latency = false;
  KvStore store(options);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.incr("call:" + std::to_string(i++ % 64) + ":legs", 1));
  }
}
BENCHMARK(BM_KvStoreIncrNoLatency);

void BM_AclComputation(benchmark::State& state) {
  Fixture f;
  const CallConfig spread = CallConfig::make(
      {{LocationId(0), 4}, {LocationId(1), 2}, {LocationId(5), 1}},
      MediaType::kVideo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acl_ms(spread, DcId(1), f.geo.latency));
  }
}
BENCHMARK(BM_AclComputation);

/// ConsoleReporter that also emits one bench_util JSON line per run
/// (`micro_controller` bench, metric `<name>.ns_per_op`), so the
/// microbenches feed the same BENCH_*.json scraping as the table benches.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      bench::emit_json("micro_controller", run.benchmark_name() + ".ns_per_op",
                       run.GetAdjustedRealTime());
    }
  }
};

}  // namespace
}  // namespace sb

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  sb::JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
