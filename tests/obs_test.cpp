// Tests for the sb::obs metrics layer: exact concurrent counting under
// ThreadPool hammering, histogram bucket/percentile correctness, snapshot
// diff semantics, CSV/JSON export, and the SB_METRICS=OFF no-op contract.
//
// The registry is process-global and tests may share a process, so every
// test uses its own metric names and diff-based assertions.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <sstream>
#include <vector>

#include "common/csv.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/timer.h"
#include "obs/timeseries.h"

namespace sb::obs {
namespace {

#ifdef SB_METRICS_ENABLED

TEST(ObsCounterTest, ConcurrentIncrementsAreExact) {
  Counter counter;
  constexpr std::size_t kTasks = 16;
  constexpr std::uint64_t kPerTask = 50000;
  ThreadPool pool(8);
  std::vector<std::future<void>> done;
  done.reserve(kTasks);
  for (std::size_t t = 0; t < kTasks; ++t) {
    done.push_back(pool.submit([&counter] {
      for (std::uint64_t i = 0; i < kPerTask; ++i) counter.inc();
    }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(counter.value(), kTasks * kPerTask);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsGaugeTest, SetAddMax) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.max_of(10.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 10.0);
  gauge.max_of(3.0);  // lower value must not win
  EXPECT_DOUBLE_EQ(gauge.value(), 10.0);
}

TEST(ObsHistogramTest, ConcurrentRecordsExactCountAndSum) {
  Histogram histogram({.min = 1e-3, .max = 10.0, .bucket_count = 40});
  constexpr std::size_t kTasks = 8;
  constexpr std::size_t kPerTask = 20000;
  ThreadPool pool(8);
  std::vector<std::future<void>> done;
  for (std::size_t t = 0; t < kTasks; ++t) {
    done.push_back(pool.submit([&histogram, t] {
      for (std::size_t i = 0; i < kPerTask; ++i) {
        histogram.record(0.001 * static_cast<double>(t + 1));
      }
    }));
  }
  for (auto& f : done) f.get();

  const HistogramData data = histogram.collect();
  EXPECT_EQ(data.count, kTasks * kPerTask);
  // Bucket totals must equal the count (no sample lost or double-counted).
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : data.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, data.count);
  double expected_sum = 0.0;
  for (std::size_t t = 0; t < kTasks; ++t) {
    expected_sum += 0.001 * static_cast<double>(t + 1) * kPerTask;
  }
  EXPECT_NEAR(data.sum, expected_sum, 1e-6 * expected_sum);
  EXPECT_DOUBLE_EQ(data.min, 0.001);
  EXPECT_DOUBLE_EQ(data.max, 0.008);
}

TEST(ObsHistogramTest, PercentilesLandInTheRightBucket) {
  // Uniform 1..1000 ms: p50 ~ 500, p90 ~ 900, p99 ~ 990. Buckets are
  // geometric with ~19% growth at 40 buckets over [1e-1, 1e4], so allow one
  // bucket of slack.
  Histogram histogram({.min = 0.1, .max = 1e4, .bucket_count = 60});
  for (int v = 1; v <= 1000; ++v) histogram.record(static_cast<double>(v));
  const HistogramData data = histogram.collect();
  EXPECT_EQ(data.count, 1000u);
  EXPECT_NEAR(data.quantile(0.5), 500.0, 110.0);
  EXPECT_NEAR(data.quantile(0.9), 900.0, 190.0);
  EXPECT_NEAR(data.quantile(0.99), 990.0, 210.0);
  EXPECT_DOUBLE_EQ(data.quantile(0.0), 1.0);   // clamped to observed min
  EXPECT_DOUBLE_EQ(data.quantile(1.0), 1000.0);  // observed max
  // Cumulative bucket counts are monotone by construction; spot-check the
  // quantile function is monotone too.
  double last = 0.0;
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double value = data.quantile(q);
    EXPECT_GE(value, last);
    last = value;
  }
}

TEST(ObsHistogramTest, UnderAndOverflowAreCountedAndClamped) {
  Histogram histogram({.min = 1.0, .max = 10.0, .bucket_count = 4});
  histogram.record(0.01);   // underflow
  histogram.record(5.0);
  histogram.record(1000.0);  // overflow
  const HistogramData data = histogram.collect();
  EXPECT_EQ(data.count, 3u);
  EXPECT_EQ(data.buckets.front(), 1u);
  EXPECT_EQ(data.buckets.back(), 1u);
  EXPECT_DOUBLE_EQ(data.min, 0.01);
  EXPECT_DOUBLE_EQ(data.max, 1000.0);
  EXPECT_DOUBLE_EQ(data.quantile(0.001), 0.01);
  EXPECT_DOUBLE_EQ(data.quantile(0.999), 1000.0);
}

TEST(ObsHistogramTest, PercentilesOnEmptySingleAndEdgeOnlyData) {
  // Empty: every derived statistic is 0.
  Histogram empty({.min = 1.0, .max = 10.0, .bucket_count = 4});
  const HistogramData none = empty.collect();
  EXPECT_EQ(none.count, 0u);
  EXPECT_DOUBLE_EQ(none.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(none.mean(), 0.0);

  // Single sample: min == max, so every quantile clamps to the sample.
  Histogram single({.min = 1.0, .max = 10.0, .bucket_count = 4});
  single.record(3.0);
  const HistogramData one = single.collect();
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(one.quantile(q), 3.0);
  }

  // All samples in the overflow bucket: the only honest estimate is the
  // exact observed max (the bucket has no finite upper edge).
  Histogram over({.min = 1.0, .max = 10.0, .bucket_count = 4});
  over.record(50.0);
  over.record(70.0);
  over.record(90.0);
  const HistogramData high = over.collect();
  EXPECT_EQ(high.buckets.back(), 3u);
  EXPECT_DOUBLE_EQ(high.quantile(0.5), 90.0);
  EXPECT_DOUBLE_EQ(high.quantile(0.99), 90.0);

  // All samples in the underflow bucket: symmetric, the exact observed min.
  Histogram under({.min = 1.0, .max = 10.0, .bucket_count = 4});
  under.record(0.1);
  under.record(0.2);
  const HistogramData low = under.collect();
  EXPECT_EQ(low.buckets.front(), 2u);
  EXPECT_DOUBLE_EQ(low.quantile(0.5), 0.1);
  EXPECT_DOUBLE_EQ(low.quantile(0.99), 0.1);
}

TEST(ObsHistogramTest, BucketBoundariesAndEdgeAssignment) {
  // min=1, max=16, 4 buckets -> geometric growth 2: finite buckets are
  // [1,2) [2,4) [4,8) [8,16), flanked by underflow (<1) and overflow (>=16).
  Histogram histogram({.min = 1.0, .max = 16.0, .bucket_count = 4});
  const HistogramData layout = histogram.collect();
  EXPECT_NEAR(layout.bucket_lower(1), 1.0, 1e-12);
  EXPECT_NEAR(layout.bucket_upper(1), 2.0, 1e-12);
  EXPECT_NEAR(layout.bucket_lower(3), 4.0, 1e-12);
  EXPECT_NEAR(layout.bucket_upper(3), 8.0, 1e-12);
  EXPECT_NEAR(layout.bucket_upper(4), 16.0, 1e-12);
  // Each finite bucket's upper edge is the next bucket's lower edge.
  for (std::size_t b = 1; b < 4; ++b) {
    EXPECT_NEAR(layout.bucket_upper(b), layout.bucket_lower(b + 1), 1e-12);
  }

  histogram.record(0.999);   // just below min -> underflow
  histogram.record(1.0);     // exactly min -> first finite bucket
  histogram.record(2.0);     // exactly an interior edge -> bucket 2 ([2,4))
  histogram.record(15.999);  // just below max -> last finite bucket
  histogram.record(16.0);    // exactly max -> overflow (buckets are [lo,hi))
  const HistogramData data = histogram.collect();
  EXPECT_EQ(data.buckets[0], 1u);
  EXPECT_EQ(data.buckets[1], 1u);
  EXPECT_EQ(data.buckets[2], 1u);
  EXPECT_EQ(data.buckets[3], 0u);
  EXPECT_EQ(data.buckets[4], 1u);
  EXPECT_EQ(data.buckets[5], 1u);
}

TEST(ObsHistogramTest, DiffReportsWindowExtremaAtBucketResolution) {
  // Regression: the diff of a window must not claim the LIFETIME min/max as
  // the window's — it reports the edges of the window's occupied buckets.
  Histogram histogram({.min = 1.0, .max = 16.0, .bucket_count = 4});
  histogram.record(1.2);  // lifetime min, outside the window below
  const HistogramData before = histogram.collect();
  histogram.record(5.0);  // the window: one sample in bucket [4,8)
  const HistogramData after = histogram.collect();

  const HistogramData window = histogram_diff(before, after);
  EXPECT_EQ(window.count, 1u);
  EXPECT_DOUBLE_EQ(window.min, 4.0);  // bucket_lower(3), not 1.2
  EXPECT_DOUBLE_EQ(window.max, 8.0);  // bucket_upper(3), not 5.0
  // Quantiles of the window stay inside its bucket edges.
  EXPECT_GE(window.quantile(0.5), 4.0);
  EXPECT_LE(window.quantile(0.5), 8.0);

  // Empty window: 0/0, not the lifetime extremes.
  const HistogramData zero = histogram_diff(after, after);
  EXPECT_EQ(zero.count, 0u);
  EXPECT_DOUBLE_EQ(zero.min, 0.0);
  EXPECT_DOUBLE_EQ(zero.max, 0.0);

  // Empty `before`: the window IS the lifetime, so exact extremes carry.
  Histogram fresh({.min = 1.0, .max = 16.0, .bucket_count = 4});
  const HistogramData empty = fresh.collect();
  fresh.record(2.5);
  fresh.record(9.0);
  const HistogramData lifetime = histogram_diff(empty, fresh.collect());
  EXPECT_DOUBLE_EQ(lifetime.min, 2.5);
  EXPECT_DOUBLE_EQ(lifetime.max, 9.0);

  // Window entirely in the underflow bucket: no finite lower edge exists,
  // so min falls back to the exact lifetime min (a lower bound) while max
  // is the underflow bucket's upper edge (= options.min).
  Histogram low({.min = 1.0, .max = 16.0, .bucket_count = 4});
  low.record(5.0);
  const HistogramData low_before = low.collect();
  low.record(0.25);
  const HistogramData low_window = histogram_diff(low_before, low.collect());
  EXPECT_DOUBLE_EQ(low_window.min, 0.25);
  EXPECT_DOUBLE_EQ(low_window.max, 1.0);
}

TEST(ObsTimeSeriesTest, CadenceAndCounterDeltaTotals) {
  MetricsRegistry& registry = MetricsRegistry::global();
  Counter& counter = registry.counter("test.timeseries.calls");
  counter.inc(5);  // pre-existing total before recording starts

  TimeSeriesRecorder recorder(&registry, {.period_s = 60.0});
  recorder.sample(0.0);   // first call always samples
  recorder.sample(30.0);  // off-cadence: skipped
  EXPECT_EQ(recorder.sample_count(), 1u);
  counter.inc(7);
  recorder.sample(60.0);  // due
  counter.inc(2);
  recorder.sample(61.0);    // skipped
  recorder.sample(119.99);  // skipped
  recorder.sample(120.0);   // due
  counter.inc(4);
  recorder.force_sample(130.0);  // epilogue: unconditional
  EXPECT_EQ(recorder.sample_count(), 4u);

  // Sum of per-interval deltas telescopes to last - first, which must equal
  // the increments recorded while the recorder was live.
  EXPECT_EQ(recorder.counter_delta_total("test.timeseries.calls"), 13u);
  const std::vector<double> series =
      recorder.series("counter:test.timeseries.calls");
  ASSERT_EQ(series.size(), 4u);
  EXPECT_DOUBLE_EQ(series[0], 5.0);
  EXPECT_DOUBLE_EQ(series[1], 12.0);
  EXPECT_DOUBLE_EQ(series[2], 14.0);
  EXPECT_DOUBLE_EQ(series[3], 18.0);
  // The last sample reproduces the registry's current totals exactly.
  EXPECT_DOUBLE_EQ(series.back(), static_cast<double>(counter.value()));
}

TEST(ObsTimeSeriesTest, CsvExportReproducesRegistryCounterTotals) {
  MetricsRegistry& registry = MetricsRegistry::global();
  Counter& counter = registry.counter("test.timeseries.csv_counter");
  registry.gauge("test.timeseries.csv_gauge").set(3.5);
  registry.histogram("test.timeseries.csv_hist").record(0.5);

  TimeSeriesRecorder recorder(&registry, {.period_s = 60.0});
  recorder.sample(0.0);
  for (int step = 1; step <= 5; ++step) {
    counter.inc(static_cast<std::uint64_t>(step));
    recorder.sample(60.0 * step);
  }

  std::ostringstream csv;
  recorder.write_csv(csv);
  const std::vector<std::vector<std::string>> rows = parse_csv(csv.str());
  ASSERT_EQ(rows.size(), 1u + 6u);  // header + samples
  const std::vector<std::string>& header = rows.front();
  EXPECT_EQ(header.front(), "t_s");
  std::size_t col = 0;
  bool found = false, saw_gauge = false, saw_p99 = false;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "counter:test.timeseries.csv_counter") {
      col = i;
      found = true;
    }
    if (header[i] == "gauge:test.timeseries.csv_gauge") saw_gauge = true;
    if (header[i] == "histogram:test.timeseries.csv_hist:p99") saw_p99 = true;
  }
  ASSERT_TRUE(found);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_p99);

  // Counter columns are cumulative and monotone; the sum of the per-row
  // deltas equals the final registry snapshot value.
  double prev = 0.0, delta_sum = 0.0;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const double value = std::stod(rows[r][col]);
    EXPECT_GE(value, prev);
    if (r > 1) delta_sum += value - prev;
    prev = value;
  }
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(prev,
                   static_cast<double>(snap.counter_value(
                       "test.timeseries.csv_counter")));
  EXPECT_DOUBLE_EQ(delta_sum, 1.0 + 2.0 + 3.0 + 4.0 + 5.0);
}

TEST(ObsRegistryTest, HandlesAreStableAndShared) {
  MetricsRegistry& registry = MetricsRegistry::global();
  Counter& a = registry.counter("test.registry.shared");
  Counter& b = registry.counter("test.registry.shared");
  EXPECT_EQ(&a, &b);
  Histogram& h = registry.histogram("test.registry.hist");
  EXPECT_EQ(&h, &registry.histogram("test.registry.hist"));
}

TEST(ObsTimerTest, ScopedTimerRecordsOneSample) {
  Histogram histogram;
  const std::uint64_t before = histogram.collect().count;
  {
    ScopedTimer timer(histogram);
  }
  ScopedTimer explicit_stop(histogram);
  const double elapsed = explicit_stop.stop();
  EXPECT_GE(elapsed, 0.0);
  const HistogramData data = histogram.collect();
  EXPECT_EQ(data.count, before + 2);
  EXPECT_LT(data.max, 10.0);  // a timer span is never remotely 10 s here
}

TEST(ObsSnapshotTest, DiffSubtractsCountersAndHistogramBuckets) {
  MetricsRegistry& registry = MetricsRegistry::global();
  Counter& counter = registry.counter("test.snapshot.counter");
  Histogram& histogram = registry.histogram("test.snapshot.hist");
  counter.inc(5);
  histogram.record(0.5);
  const MetricsSnapshot before = registry.snapshot();
  counter.inc(3);
  histogram.record(0.25);
  histogram.record(0.75);
  const MetricsSnapshot after = registry.snapshot();

  const MetricsSnapshot delta = snapshot_diff(before, after);
  EXPECT_EQ(delta.counter_value("test.snapshot.counter"), 3u);
  const HistogramSample* h = delta.find_histogram("test.snapshot.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->data.count, 2u);
  EXPECT_NEAR(h->data.sum, 1.0, 1e-9);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : h->data.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 2u);
}

TEST(ObsSnapshotTest, CsvAndJsonExportRoundTrip) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.counter("test.export.counter").inc(7);
  registry.gauge("test.export.gauge").set(2.5);
  registry.histogram("test.export.hist").record(0.125);
  const MetricsSnapshot snap = registry.snapshot();

  std::ostringstream csv;
  snap.write_csv(csv);
  const std::vector<std::vector<std::string>> rows = parse_csv(csv.str());
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.front().front(), "kind");
  EXPECT_EQ(rows.front().size(), 11u);
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& row : rows) {
    ASSERT_EQ(row.size(), rows.front().size());
    if (row[1] == "test.export.counter") {
      saw_counter = true;
      EXPECT_EQ(row[0], "counter");
      EXPECT_EQ(row[2], "7");
    }
    if (row[1] == "test.export.gauge") saw_gauge = true;
    if (row[1] == "test.export.hist") {
      saw_hist = true;
      EXPECT_EQ(row[0], "histogram");
      EXPECT_GE(std::stoull(row[3]), 1u);  // count column
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);

  std::ostringstream json;
  snap.write_json(json);
  const std::string text = json.str();
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"test.export.counter\": 7"), std::string::npos);
  EXPECT_NE(text.find("\"p99\""), std::string::npos);
}

#else  // !SB_METRICS_ENABLED

TEST(ObsNoopTest, EverythingCompilesToNoops) {
  MetricsRegistry& registry = MetricsRegistry::global();
  Counter& counter = registry.counter("noop.counter");
  counter.inc(100);
  EXPECT_EQ(counter.value(), 0u);
  Gauge& gauge = registry.gauge("noop.gauge");
  gauge.set(5.0);
  EXPECT_EQ(gauge.value(), 0.0);
  Histogram& histogram = registry.histogram("noop.hist");
  histogram.record(1.0);
  {
    ScopedTimer timer(histogram);
  }
  EXPECT_EQ(histogram.collect().count, 0u);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_TRUE(snap.empty());
  std::ostringstream csv;
  snap.write_csv(csv);
  EXPECT_FALSE(csv.str().empty());  // header row still prints
}

#endif  // SB_METRICS_ENABLED

}  // namespace
}  // namespace sb::obs
