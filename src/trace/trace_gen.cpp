#include "trace/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sb {

TraceGenerator::TraceGenerator(const World& world,
                               const CallConfigRegistry& registry,
                               ConfigUniverse universe, DiurnalShape shape,
                               TraceParams params, std::uint64_t seed)
    : world_(&world),
      registry_(&registry),
      universe_(std::move(universe)),
      shape_(shape),
      params_(params),
      seed_(seed) {
  require(!universe_.configs.empty(), "TraceGenerator: empty universe");
  require(params_.bucket_s > 0.0, "TraceGenerator: bucket width");
  require(params_.mean_duration_s > 0.0, "TraceGenerator: mean duration");
  require(params_.join_p80_s > 0.0, "TraceGenerator: join p80");
  require(params_.join_p80_fraction > 0.0 && params_.join_p80_fraction < 1.0,
          "TraceGenerator: join p80 fraction");

  // Single-country calls always have a majority-country first joiner, so to
  // hit the overall first_joiner_majority_prob target the miss probability
  // must be concentrated on the multi-country call share.
  double multi_rate = 0.0;
  double total_rate = 0.0;
  for (const ConfigUsage& u : universe_.configs) {
    total_rate += u.base_rate_per_hour;
    if (!registry.get(u.config).single_location()) {
      multi_rate += u.base_rate_per_hour;
    }
  }
  const double multi_share = total_rate > 0.0 ? multi_rate / total_rate : 0.0;
  multi_majority_prob_ =
      multi_share <= 0.0
          ? 1.0
          : std::clamp(
                1.0 - (1.0 - params_.first_joiner_majority_prob) / multi_share,
                0.0, 1.0);
}

double TraceGenerator::rate_per_hour(std::size_t idx, SimTime t) const {
  require(idx < universe_.configs.size(), "rate_per_hour: bad index");
  const ConfigUsage& usage = universe_.configs[idx];
  const Location& home = world_->location(usage.home);
  const double weeks = t / kSecondsPerWeek;
  return usage.base_rate_per_hour * shape_.activity(home, t) *
         std::pow(usage.weekly_growth, weeks);
}

Rng TraceGenerator::bucket_rng(std::size_t idx, std::int64_t bucket) const {
  // Mix seed, config index, and absolute bucket so any window over the same
  // process sees identical draws.
  std::uint64_t h = seed_;
  h ^= 0x9e3779b97f4a7c15ULL + (idx << 20) + static_cast<std::uint64_t>(bucket);
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 29;
  return Rng(h);
}

std::vector<double> TraceGenerator::arrival_count_series(std::size_t idx,
                                                         SimTime start_s,
                                                         SimTime end_s) const {
  require(end_s > start_s, "arrival_count_series: empty window");
  const auto first = static_cast<std::int64_t>(start_s / params_.bucket_s);
  const auto last = static_cast<std::int64_t>(
      std::ceil(end_s / params_.bucket_s));
  std::vector<double> counts;
  counts.reserve(static_cast<std::size_t>(last - first));
  for (std::int64_t b = first; b < last; ++b) {
    const double mid = (static_cast<double>(b) + 0.5) * params_.bucket_s;
    const double mean =
        rate_per_hour(idx, mid) * params_.bucket_s / kSecondsPerHour;
    Rng rng = bucket_rng(idx, b);
    counts.push_back(static_cast<double>(rng.poisson(mean)));
  }
  return counts;
}

DemandMatrix TraceGenerator::expected_demand(double slot_s, SimTime start_s,
                                             SimTime end_s) const {
  require(slot_s > 0.0, "expected_demand: slot width");
  require(end_s > start_s, "expected_demand: empty window");
  const auto slots =
      static_cast<std::size_t>(std::ceil((end_s - start_s) / slot_s));
  std::vector<ConfigId> configs;
  configs.reserve(universe_.configs.size());
  for (const ConfigUsage& u : universe_.configs) configs.push_back(u.config);
  DemandMatrix demand = make_demand_matrix(std::move(configs), slots);
  for (std::size_t idx = 0; idx < universe_.configs.size(); ++idx) {
    for (std::size_t t = 0; t < slots; ++t) {
      const double mid = start_s + (static_cast<double>(t) + 0.5) * slot_s;
      // Little's law: mean concurrency = arrival rate x mean duration.
      const double concurrency = rate_per_hour(idx, mid) / kSecondsPerHour *
                                 params_.mean_duration_s;
      demand.set_demand(static_cast<TimeSlot>(t), idx, concurrency);
    }
  }
  return demand;
}

CallRecordDatabase TraceGenerator::generate(SimTime start_s,
                                            SimTime end_s) const {
  require(end_s > start_s, "generate: empty window");
  CallRecordDatabase db;
  // Log-normal with the requested mean: mu = ln(mean) - sigma^2/2.
  const double mu = std::log(params_.mean_duration_s) -
                    params_.duration_sigma * params_.duration_sigma / 2.0;

  const auto first = static_cast<std::int64_t>(start_s / params_.bucket_s);
  const auto last =
      static_cast<std::int64_t>(std::ceil(end_s / params_.bucket_s));
  std::uint32_t next_call = 0;

  for (std::int64_t b = first; b < last; ++b) {
    for (std::size_t idx = 0; idx < universe_.configs.size(); ++idx) {
      const double mid = (static_cast<double>(b) + 0.5) * params_.bucket_s;
      const double mean =
          rate_per_hour(idx, mid) * params_.bucket_s / kSecondsPerHour;
      Rng rng = bucket_rng(idx, b);
      const std::uint64_t arrivals = rng.poisson(mean);
      const ConfigUsage& usage = universe_.configs[idx];
      const CallConfig& config = registry_->get(usage.config);
      for (std::uint64_t a = 0; a < arrivals; ++a) {
        CallRecord record;
        record.id = CallId(next_call++);
        record.config = usage.config;
        record.start_s = (static_cast<double>(b) + rng.uniform()) *
                         params_.bucket_s;
        if (record.start_s < start_s || record.start_s >= end_s) continue;
        record.duration_s = std::clamp(
            rng.lognormal(mu, params_.duration_sigma), 60.0, 4.0 * 3600.0);

        // Expand config entries into legs with join offsets. The first
        // joiner sits at offset 0, so the exponential rate for the other
        // n-1 legs is set to make the OVERALL join_p80_fraction land at
        // join_p80_s (Fig 8): p_others = (f*n - 1) / (n - 1).
        const std::uint32_t n = config.total_participants();
        const double p_others =
            n < 2 ? 0.0
                  : std::clamp((params_.join_p80_fraction * n - 1.0) /
                                   (n - 1.0),
                               0.05, 0.98);
        const double join_rate =
            -std::log(1.0 - p_others) / params_.join_p80_s;
        for (const ConfigEntry& e : config.entries()) {
          for (std::uint32_t p = 0; p < e.count; ++p) {
            const double offset = std::min(rng.exponential(join_rate),
                                           record.duration_s * 0.9);
            record.legs.push_back(CallLeg{e.location, offset});
          }
        }
        // Pick the first joiner per §5.4: usually someone from the majority
        // country; set their offset to zero and sort.
        const LocationId majority = config.majority_location();
        std::size_t first_leg = 0;
        const bool want_majority =
            config.single_location() || rng.chance(multi_majority_prob_);
        for (std::size_t i = 0; i < record.legs.size(); ++i) {
          const bool is_majority = record.legs[i].location == majority;
          if (is_majority == want_majority) {
            first_leg = i;
            break;
          }
        }
        record.legs[first_leg].join_offset_s = 0.0;
        std::sort(record.legs.begin(), record.legs.end(),
                  [](const CallLeg& x, const CallLeg& y) {
                    return x.join_offset_s < y.join_offset_s;
                  });

        if (config.media() != MediaType::kAudio &&
            rng.chance(params_.media_upgrade_prob)) {
          record.media_change_offset_s =
              rng.uniform(30.0, params_.media_upgrade_max_s);
        }
        db.add(std::move(record));
      }
    }
  }
  return db;
}

}  // namespace sb
