# Empty compiler generated dependencies file for fig8_join_fraction.
# This may be replaced when dependencies are built.
