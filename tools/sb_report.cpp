// sb_report: offline renderer for the observability artifacts the tools and
// benches write — a Chrome trace-event span dump (--trace-out), a
// TimeSeriesRecorder CSV (--timeseries-out), and a MetricsRegistry snapshot
// (--metrics-out) — into one human-readable summary or a single JSON object.
//
//   sb_report --trace trace.json                 # per-name span statistics
//   sb_report --timeseries series.csv            # counter/gauge evolution
//   sb_report --metrics metrics.json             # final registry totals
//   sb_report --trace t.json --json              # machine-readable summary
//
// Any combination of inputs is accepted; at least one is required. The
// trace reader understands exactly what obs::write_chrome_trace emits (one
// complete "X" event per span), so a flight-recorder dump from a failed
// sb_fuzz run renders the same way a full-session trace does.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "check/json.h"
#include "common/error.h"
#include "common/table.h"
#include "obs/span.h"
#include "obs/trace_export.h"

namespace {

using sb::check::Json;

struct Args {
  std::string trace;
  std::string timeseries;
  std::string metrics;
  bool json = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: sb_report [--trace FILE] [--timeseries FILE]\n"
               "                 [--metrics FILE] [--json]\n");
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      a.trace = v;
    } else if (arg == "--timeseries") {
      const char* v = next();
      if (v == nullptr) return false;
      a.timeseries = v;
    } else if (arg == "--metrics") {
      const char* v = next();
      if (v == nullptr) return false;
      a.metrics = v;
    } else if (arg == "--json") {
      a.json = true;
    } else {
      std::fprintf(stderr, "sb_report: unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  return !a.trace.empty() || !a.timeseries.empty() || !a.metrics.empty();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw sb::Error("sb_report: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

sb::obs::Subsystem subsystem_of(const std::string& cat) {
  using sb::obs::Subsystem;
  for (const Subsystem s :
       {Subsystem::kController, Subsystem::kRealtime, Subsystem::kDrain,
        Subsystem::kLp, Subsystem::kProvisioner, Subsystem::kSim,
        Subsystem::kCheck}) {
    if (cat == to_string(s)) return s;
  }
  return Subsystem::kOther;
}

// ---------------------------------------------------------------- trace ----

struct TraceReport {
  std::uint64_t spans = 0;
  std::uint64_t threads = 0;
  std::uint64_t roots = 0;
  double wall_span_s = 0.0;  ///< last end minus first start
  std::vector<sb::obs::SpanStats> stats;
};

/// Reads a write_chrome_trace() dump back into SpanData (names interned in
/// `names` — keep it alive as long as the report is used).
TraceReport read_trace(const std::string& path, std::deque<std::string>& names,
                       std::vector<sb::obs::SpanData>& spans) {
  const Json doc = Json::parse(slurp(path));
  const Json::Array& events = doc.get("traceEvents").as_array();
  std::map<std::string, const char*> interned;
  std::map<double, bool> tids;
  double t_min = 0.0, t_max = 0.0;
  TraceReport rep;
  for (const Json& ev : events) {
    const Json::Object& e = ev.as_object();
    const auto ph = e.find("ph");
    if (ph == e.end() || ph->second.as_string() != "X") continue;
    sb::obs::SpanData s;
    const std::string& name = e.at("name").as_string();
    auto it = interned.find(name);
    if (it == interned.end()) {
      names.push_back(name);
      it = interned.emplace(name, names.back().c_str()).first;
    }
    s.name = it->second;
    const auto cat = e.find("cat");
    s.subsystem = subsystem_of(cat == e.end() ? "" : cat->second.as_string());
    const double ts_us = e.at("ts").as_number();
    const double dur_us = e.at("dur").as_number();
    s.wall_start_ns = static_cast<std::int64_t>(ts_us * 1e3);
    s.wall_end_ns = static_cast<std::int64_t>((ts_us + dur_us) * 1e3);
    const auto tid = e.find("tid");
    if (tid != e.end()) {
      s.thread = static_cast<std::uint32_t>(tid->second.as_u64());
      tids[tid->second.as_number()] = true;
    }
    const auto args = e.find("args");
    if (args != e.end() && args->second.is_object()) {
      const Json::Object& a = args->second.as_object();
      const auto id = a.find("span");
      if (id != a.end()) s.id = id->second.as_u64();
      const auto parent = a.find("parent");
      if (parent != a.end()) s.parent = parent->second.as_u64();
      const auto sim = a.find("sim_time");
      if (sim != a.end()) s.sim_time = sim->second.as_number();
    }
    if (rep.spans == 0 || s.wall_start_ns < t_min) {
      t_min = static_cast<double>(s.wall_start_ns);
    }
    t_max = std::max(t_max, static_cast<double>(s.wall_end_ns));
    if (s.parent == 0) ++rep.roots;
    ++rep.spans;
    spans.push_back(s);
  }
  rep.threads = tids.size();
  rep.wall_span_s = rep.spans == 0 ? 0.0 : (t_max - t_min) * 1e-9;
  rep.stats = sb::obs::span_stats(spans);
  return rep;
}

Json trace_json(const TraceReport& rep) {
  Json::Object out;
  out["spans"] = rep.spans;
  out["threads"] = rep.threads;
  out["roots"] = rep.roots;
  out["wall_span_s"] = rep.wall_span_s;
  Json::Array by_name;
  for (const sb::obs::SpanStats& s : rep.stats) {
    Json::Object row;
    row["name"] = std::string(s.name);
    row["subsystem"] = std::string(to_string(s.subsystem));
    row["count"] = s.count;
    row["total_s"] = s.total_s;
    row["mean_s"] = s.mean_s();
    row["min_s"] = s.min_s;
    row["max_s"] = s.max_s;
    by_name.push_back(Json(std::move(row)));
  }
  out["by_name"] = Json(std::move(by_name));
  return Json(std::move(out));
}

void trace_text(std::ostream& out, const std::string& path,
                const TraceReport& rep) {
  sb::print_banner(out, "span trace: " + path);
  out << rep.spans << " span(s), " << rep.roots << " root(s), "
      << rep.threads << " thread(s), "
      << sb::format_double(rep.wall_span_s, 3) << " s wall span\n\n";
  sb::obs::write_span_stats(out, rep.stats);
}

// ----------------------------------------------------------- timeseries ----

struct SeriesColumn {
  std::string name;
  double first = 0.0;
  double last = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct SeriesReport {
  std::size_t samples = 0;
  double t_first = 0.0;
  double t_last = 0.0;
  std::vector<SeriesColumn> columns;
};

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) out.push_back(field);
  return out;
}

SeriesReport read_timeseries(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw sb::Error("sb_report: cannot read " + path);
  std::string line;
  if (!std::getline(in, line)) {
    throw sb::Error("sb_report: empty time-series file " + path);
  }
  const std::vector<std::string> header = split_csv(line);
  if (header.empty() || header.front() != "t_s") {
    throw sb::Error("sb_report: " + path + " is not a TimeSeriesRecorder CSV");
  }
  SeriesReport rep;
  rep.columns.resize(header.size() - 1);
  for (std::size_t c = 1; c < header.size(); ++c) {
    rep.columns[c - 1].name = header[c];
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> row = split_csv(line);
    const double t = std::strtod(row.front().c_str(), nullptr);
    if (rep.samples == 0) rep.t_first = t;
    rep.t_last = t;
    for (std::size_t c = 1; c < row.size() && c < header.size(); ++c) {
      const double v = std::strtod(row[c].c_str(), nullptr);
      SeriesColumn& col = rep.columns[c - 1];
      if (rep.samples == 0) {
        col.first = col.last = col.min = col.max = v;
      } else {
        col.last = v;
        col.min = std::min(col.min, v);
        col.max = std::max(col.max, v);
      }
    }
    ++rep.samples;
  }
  return rep;
}

bool is_counter_column(const std::string& name) {
  return name.rfind("counter:", 0) == 0;
}

Json timeseries_json(const SeriesReport& rep) {
  Json::Object out;
  out["samples"] = rep.samples;
  out["t_first_s"] = rep.t_first;
  out["t_last_s"] = rep.t_last;
  Json::Array cols;
  for (const SeriesColumn& c : rep.columns) {
    Json::Object row;
    row["column"] = c.name;
    row["first"] = c.first;
    row["last"] = c.last;
    row["min"] = c.min;
    row["max"] = c.max;
    if (is_counter_column(c.name)) row["delta"] = c.last - c.first;
    cols.push_back(Json(std::move(row)));
  }
  out["columns"] = Json(std::move(cols));
  return Json(std::move(out));
}

void timeseries_text(std::ostream& out, const std::string& path,
                     const SeriesReport& rep) {
  sb::print_banner(out, "time series: " + path);
  out << rep.samples << " sample(s) over t = ["
      << sb::format_double(rep.t_first, 1) << ", "
      << sb::format_double(rep.t_last, 1) << "] s, " << rep.columns.size()
      << " column(s)\n\n";
  if (rep.columns.empty()) return;
  sb::TextTable table({"column", "first", "last", "min", "max", "delta"});
  for (const SeriesColumn& c : rep.columns) {
    table.row()
        .cell(c.name)
        .cell(c.first, 2)
        .cell(c.last, 2)
        .cell(c.min, 2)
        .cell(c.max, 2)
        .cell(is_counter_column(c.name)
                  ? sb::format_double(c.last - c.first, 0)
                  : std::string("-"));
  }
  out << table;
}

// -------------------------------------------------------------- metrics ----

void metrics_text(std::ostream& out, const std::string& path,
                  const Json& doc) {
  sb::print_banner(out, "metrics snapshot: " + path);
  const Json::Object& counters = doc.get("counters").as_object();
  const Json::Object& gauges = doc.get("gauges").as_object();
  const Json::Object& histograms = doc.get("histograms").as_object();
  if (!counters.empty() || !gauges.empty()) {
    sb::TextTable table({"metric", "kind", "value"});
    for (const auto& [name, value] : counters) {
      table.row().cell(name).cell("counter").cell(
          static_cast<std::uint64_t>(value.as_u64()));
    }
    for (const auto& [name, value] : gauges) {
      table.row().cell(name).cell("gauge").cell(value.as_number(), 2);
    }
    out << table << "\n";
  }
  if (!histograms.empty()) {
    sb::TextTable table(
        {"histogram", "count", "mean", "p50", "p99", "min", "max"});
    for (const auto& [name, h] : histograms) {
      table.row()
          .cell(name)
          .cell(static_cast<std::uint64_t>(h.get_or("count", 0.0)))
          .cell(h.get_or("mean", 0.0), 4)
          .cell(h.get_or("p50", 0.0), 4)
          .cell(h.get_or("p99", 0.0), 4)
          .cell(h.get_or("min", 0.0), 4)
          .cell(h.get_or("max", 0.0), 4);
    }
    out << table;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse_args(argc, argv, a)) {
    usage();
    return 2;
  }
  try {
    Json::Object summary;
    std::deque<std::string> names;
    std::vector<sb::obs::SpanData> spans;
    if (!a.trace.empty()) {
      const TraceReport rep = read_trace(a.trace, names, spans);
      if (a.json) {
        summary["trace"] = trace_json(rep);
      } else {
        trace_text(std::cout, a.trace, rep);
      }
    }
    if (!a.timeseries.empty()) {
      const SeriesReport rep = read_timeseries(a.timeseries);
      if (a.json) {
        summary["timeseries"] = timeseries_json(rep);
      } else {
        timeseries_text(std::cout, a.timeseries, rep);
      }
    }
    if (!a.metrics.empty()) {
      const Json doc = Json::parse(slurp(a.metrics));
      if (a.json) {
        summary["metrics"] = doc;
      } else {
        metrics_text(std::cout, a.metrics, doc);
      }
    }
    if (a.json) std::cout << Json(std::move(summary)).dump(2) << "\n";
    return 0;
  } catch (const sb::Error& e) {
    std::fprintf(stderr, "sb_report: %s\n", e.what());
    return 1;
  }
}
